// Deterministic fault injection and availability accounting.
//
// The paper measures steady-state behaviour only, but its motivating
// requirement (<0.5 % loss, ~5 s delivery) is really a claim about behaviour
// *under failure*: the R-GMA deployment report attributes most real-world
// loss to registry/servlet outages, and Zhang et al. benchmark monitoring
// services under component restart. A FaultPlan is a declarative, seedless
// schedule of fault events; the experiment harnesses translate it into
// kernel timers, so a chaos run stays a pure function of
// (scenario, duration, seed) and is byte-identical across campaign `jobs`
// settings — faults fire at fixed virtual times, never from wall-clock or
// extra RNG draws.
//
// Three pieces live here:
//  - FaultPlan / FaultEvent: the schedule (builder helpers + a line-based
//    serialisation so plans can be logged or diffed).
//  - FaultInjector: binds a plan to a Simulation through FaultHooks — a
//    struct of std::function slots the experiment fills in with whatever its
//    topology exposes (LAN NICs, brokers, R-GMA servlets). Events whose hook
//    is unset are skipped, so one plan type serves both middlewares.
//  - AvailabilityTracker / Availability: per-run downtime, time-to-recover
//    (fault start → first post-fault delivery), and in-window vs post-window
//    loss classification, exported through Results into campaign CSV/JSON.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulation.hpp"
#include "util/units.hpp"

namespace gridmon::core {

enum class FaultKind {
  kNicDown,         ///< target = LAN node; NIC down for `duration`
  kLossBurst,       ///< LAN-wide datagram loss `param` for `duration`
  kLinkLoss,        ///< directed (target → target2) loss `param`
  kDbnPartition,    ///< cut the inter-broker links for `duration`
  kBrokerCrash,     ///< target = broker index; restart after `duration` dwell
  kRegistryRestart,       ///< registry container down `duration`, state wiped
  kProducerServletRestart,  ///< target = service index (-1 = all)
  kConsumerServletRestart,  ///< target = service index (-1 = all)
  kRegistryExpiry,  ///< force one soft-state expiry sweep immediately
  kRegistryHalfOpen,  ///< registry accepts connections but never responds
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

/// What `FaultEvent::at` is measured from. Most chaos scenarios anchor at
/// the steady-state epoch (after the creation ramp + warm-up, when every
/// client is publishing); registration-path faults anchor at run start so
/// they land *during* the ramp, where registration actually happens.
enum class FaultAnchor { kSteady, kRunStart };

struct FaultEvent {
  SimTime at = 0;  ///< offset from the anchor epoch
  FaultKind kind = FaultKind::kNicDown;
  FaultAnchor anchor = FaultAnchor::kSteady;
  int target = -1;
  int target2 = -1;
  SimTime duration = 0;  ///< outage window / crash dwell (0 = instantaneous)
  double param = 0.0;    ///< loss probability for the loss kinds
};

/// An outage window in *absolute* simulated time (resolved anchors).
struct FaultWindow {
  SimTime begin = 0;
  SimTime end = 0;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  // Builder helpers (all return *this for chaining).
  FaultPlan& nic_down(SimTime at, int node, SimTime duration,
                      FaultAnchor anchor = FaultAnchor::kSteady);
  FaultPlan& loss_burst(SimTime at, double probability, SimTime duration,
                        FaultAnchor anchor = FaultAnchor::kSteady);
  FaultPlan& link_loss(SimTime at, int src, int dst, double probability,
                       SimTime duration,
                       FaultAnchor anchor = FaultAnchor::kSteady);
  FaultPlan& dbn_partition(SimTime at, SimTime duration,
                           FaultAnchor anchor = FaultAnchor::kSteady);
  FaultPlan& broker_crash(SimTime at, int broker, SimTime dwell,
                          FaultAnchor anchor = FaultAnchor::kSteady);
  FaultPlan& registry_restart(SimTime at, SimTime outage,
                              FaultAnchor anchor = FaultAnchor::kRunStart);
  FaultPlan& producer_servlet_restart(
      SimTime at, int service, SimTime outage,
      FaultAnchor anchor = FaultAnchor::kSteady);
  FaultPlan& consumer_servlet_restart(
      SimTime at, int service, SimTime outage,
      FaultAnchor anchor = FaultAnchor::kSteady);
  FaultPlan& registry_expiry(SimTime at,
                             FaultAnchor anchor = FaultAnchor::kSteady);
  /// Half-open outage: the registry accepts requests but never answers
  /// them, so only client-side time-outs make progress (Chaos v2).
  FaultPlan& registry_half_open(SimTime at, SimTime outage,
                                FaultAnchor anchor = FaultAnchor::kRunStart);

  /// One event per line: `kind anchor at_ns duration_ns target target2 param`.
  [[nodiscard]] std::string serialise() const;
  /// Inverse of serialise(); throws std::invalid_argument on malformed input.
  [[nodiscard]] static FaultPlan parse(std::string_view text);
};

/// True when `now` falls inside any of the (sorted, absolute) windows.
/// The harnesses use this to classify refusals: one that lands inside an
/// outage window is the fault schedule at work, not resource exhaustion.
[[nodiscard]] bool in_fault_window(const std::vector<FaultWindow>& windows,
                                   SimTime now);

/// Hook slots the experiment wires to its topology. Unset slots make the
/// corresponding fault kinds no-ops (an R-GMA run ignores broker crashes).
struct FaultHooks {
  std::function<void(int node, bool down)> set_nic;
  std::function<void(double probability, bool active)> set_loss;
  std::function<void(int src, int dst, double probability, bool active)>
      set_link_loss;
  std::function<void(bool cut)> set_partition;
  std::function<void(int broker)> crash_broker;
  std::function<void(int broker)> restart_broker;
  std::function<void(bool down)> set_registry_down;
  std::function<void(bool half_open)> set_registry_half_open;
  std::function<void(int service, bool down)> set_producer_servlet_down;
  std::function<void(int service, bool down)> set_consumer_servlet_down;
  std::function<void()> expire_registrations;
};

/// Schedules a FaultPlan's begin/end actions on the kernel. Construct after
/// topology setup, call arm() once the steady-state epoch is known, keep
/// alive for the whole run (hooks capture topology references).
class FaultInjector {
 public:
  FaultInjector(sim::Simulation& sim, FaultPlan plan, FaultHooks hooks);

  /// Schedule every event. kSteady events anchor at `steady_epoch`,
  /// kRunStart events at time zero. Call exactly once, before run_until.
  void arm(SimTime steady_epoch);

  /// Absolute outage windows ([begin, begin+duration)), sorted by begin.
  /// Valid after arm().
  [[nodiscard]] const std::vector<FaultWindow>& windows() const {
    return windows_;
  }
  /// Fault begin-actions executed so far (instantaneous events count once).
  [[nodiscard]] std::uint64_t injected() const { return injected_; }

 private:
  void execute(const FaultEvent& event, bool begin);

  sim::Simulation& sim_;
  FaultPlan plan_;
  FaultHooks hooks_;
  std::vector<FaultWindow> windows_;
  std::uint64_t injected_ = 0;
};

/// Availability metrics for one run (all zero when the plan is empty).
struct Availability {
  std::uint64_t fault_events = 0;   ///< fault begin-actions executed
  double downtime_ms = 0.0;         ///< Σ per-window (first delivery − start)
  double time_to_recover_ms = 0.0;  ///< worst window's fault-start → first
                                    ///< post-fault delivery (clamped to the
                                    ///< run horizon if never recovered)
  /// Per-window TTR, one entry per outage window in begin order (the same
  /// values time_to_recover_ms is the max of). Campaign pooling keeps the
  /// element-wise worst case across seeds; exported in the JSON campaign
  /// format only, so the pinned CSV golden hashes stay put.
  std::vector<double> ttr_windows_ms;
  std::uint64_t lost_in_window = 0;   ///< losses sent inside an outage window
  std::uint64_t lost_post_window = 0;  ///< losses sent after the last window
                                       ///< began but outside any window
  std::uint64_t delivered_late = 0;  ///< deliveries past the 5 s deadline
  std::uint64_t reconnects = 0;      ///< client reconnect attempts
  std::uint64_t resubscribes = 0;    ///< subscriptions re-established
  std::uint64_t reregistrations = 0;  ///< R-GMA re-register/redeclare actions
  std::uint64_t backfill_msgs = 0;   ///< messages replayed from retention
  std::int64_t backfill_bytes = 0;   ///< wire bytes spent on replay traffic
};

/// Accumulates recovery timing against a set of outage windows. on_delivery
/// is called for every end-to-end delivery (cheap once all windows have
/// recovered); classify_loss is called per lost message at run end.
class AvailabilityTracker {
 public:
  void set_windows(std::vector<FaultWindow> windows);

  void on_delivery(SimTime now);
  void classify_loss(SimTime sent_at);

  /// Close unrecovered windows at the run horizon and return the totals.
  /// The counter fields (fault_events, delivered_late, reconnects, ...) are
  /// left zero for the caller to fill in.
  [[nodiscard]] Availability finalise(SimTime horizon) const;

 private:
  struct WindowState {
    FaultWindow window;
    SimTime recovered_at = -1;  ///< first delivery at/after window.begin
  };
  std::vector<WindowState> windows_;
  std::size_t unrecovered_ = 0;
  std::uint64_t lost_in_window_ = 0;
  std::uint64_t lost_post_window_ = 0;
};

}  // namespace gridmon::core
