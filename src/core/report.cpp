#include "core/report.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <utility>

#include "core/campaign.hpp"

namespace gridmon::core {

std::vector<double> rtt_row(const Results& results) {
  return {results.metrics.rtt_mean_ms(), results.metrics.rtt_stddev_ms()};
}

std::vector<double> percentile_row(const Results& results) {
  std::vector<double> out;
  out.reserve(paper_percentiles().size());
  for (double pct : paper_percentiles()) {
    out.push_back(results.metrics.rtt_percentile_ms(pct));
  }
  return out;
}

std::vector<double> resource_row(const Results& results) {
  return {results.servers.cpu_idle_pct,
          static_cast<double>(results.servers.memory_bytes) /
              static_cast<double>(units::MiB)};
}

std::vector<double> decomposition_row(const Results& results) {
  const double prt = results.metrics.prt_ms().mean();
  const double pt = results.metrics.pt_ms().mean();
  const double srt = results.metrics.srt_ms().mean();
  return {0.0, prt, prt + pt, prt + pt + srt};
}

std::string grade_realtime(const Results& results) {
  const double p998 = results.metrics.rtt_percentile_ms(99.8);
  if (p998 <= 100.0) return "Very good";
  if (p998 <= 1000.0) return "Good";
  if (p998 <= 5000.0) return "Average";
  return "Poor";
}

obs::SloInput slo_input(const Results& results, SimTime duration) {
  obs::SloInput input;
  input.sent = results.metrics.sent();
  input.received = results.metrics.received();
  input.delivered_late = results.metrics.delivered_late();
  input.lost_in_window = results.availability.lost_in_window;
  input.lost_post_window = results.availability.lost_post_window;
  input.downtime_ms = results.availability.downtime_ms;
  input.ttr_ms = results.availability.time_to_recover_ms;
  input.ttr_windows_ms = results.availability.ttr_windows_ms;
  input.duration_ms = units::to_millis(duration);
  return input;
}

obs::SloReport evaluate_slo(const obs::SloSpec& spec, const Results& results,
                            SimTime duration) {
  return obs::evaluate_slo(spec, slo_input(results, duration));
}

// --- Cross-run regression diffing --------------------------------------------

namespace {

// Minimal recursive-descent JSON reader, sized for the documents
// Campaign::json() writes (flat run objects, one nesting level of arrays/
// objects for ttr_windows_ms / mem_peak_bytes). Parse failures surface as
// CampaignDiff.error, never exceptions.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out) {
    const bool ok = value(out);
    skip_ws();
    return ok && pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object(out);
      case '[':
        return array(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return string(out.string);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return literal("null");
      default:
        return number(out);
    }
  }

  bool string(std::string& out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            // Our own writer only emits \u00xx controls; decode as a byte.
            if (pos_ + 4 > text_.size()) return false;
            c = static_cast<char>(
                std::strtol(std::string(text_.substr(pos_, 4)).c_str(),
                            nullptr, 16));
            pos_ += 4;
            break;
          default:
            return false;
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number(JsonValue& out) {
    const std::size_t begin = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == begin) return false;
    out.type = JsonValue::Type::kNumber;
    char* end = nullptr;
    const std::string token(text_.substr(begin, pos_ - begin));
    out.number = std::strtod(token.c_str(), &end);
    return end == token.c_str() + token.size();
  }

  bool array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || !string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      JsonValue element;
      if (!value(element)) return false;
      out.object.emplace_back(std::move(key), std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// The metric table the diff walks. Direction encodes which way "worse"
// points; advisory metrics never flip the verdict.
struct DiffMetric {
  const char* key;
  enum class Direction { kLowerBetter, kHigherBetter, kNeutral } direction;
  bool advisory;
};

constexpr DiffMetric kDiffMetrics[] = {
    {"loss_pct", DiffMetric::Direction::kLowerBetter, false},
    {"rtt_mean_ms", DiffMetric::Direction::kLowerBetter, false},
    {"rtt_p99_ms", DiffMetric::Direction::kLowerBetter, false},
    {"pt_mean_ms", DiffMetric::Direction::kLowerBetter, false},
    {"slo_worst_burn", DiffMetric::Direction::kLowerBetter, false},
    {"peak_model_bytes", DiffMetric::Direction::kLowerBetter, false},
    {"loss_after_recovery_pct", DiffMetric::Direction::kLowerBetter, false},
    {"backfill_bytes", DiffMetric::Direction::kNeutral, false},
    {"bytes_per_generator", DiffMetric::Direction::kLowerBetter, false},
    {"sim_events", DiffMetric::Direction::kNeutral, false},
    {"wall_seconds", DiffMetric::Direction::kLowerBetter, true},
    {"events_per_sec", DiffMetric::Direction::kHigherBetter, true},
};

double number_or(const JsonValue& run, std::string_view key, double fallback,
                 bool* present = nullptr) {
  const JsonValue* v = run.find(key);
  if (present != nullptr) {
    *present = v != nullptr && v->type == JsonValue::Type::kNumber;
  }
  if (v == nullptr || v->type != JsonValue::Type::kNumber) return fallback;
  return v->number;
}

/// -1 unknown/no spec, 0 fail, 1 pass (handles both the JSON null/bool
/// form and a plain numeric column).
int slo_verdict(const JsonValue& run) {
  const JsonValue* v = run.find("slo_pass");
  if (v == nullptr || v->type == JsonValue::Type::kNull) return -1;
  if (v->type == JsonValue::Type::kBool) return v->boolean ? 1 : 0;
  if (v->type == JsonValue::Type::kNumber) {
    return v->number < 0 ? -1 : (v->number > 0 ? 1 : 0);
  }
  return -1;
}

bool parse_campaign_doc(std::string_view text, JsonValue& doc, int& schema,
                        const JsonValue*& runs, std::string& error,
                        const char* label) {
  JsonParser parser(text);
  if (!parser.parse(doc)) {
    error = std::string(label) + ": not valid JSON";
    return false;
  }
  if (doc.type != JsonValue::Type::kObject) {
    error = std::string(label) +
            ": not a campaign document (expected a JSON object with "
            "\"schema_version\" — legacy bare-array exports predate the "
            "schema and cannot be diffed)";
    return false;
  }
  const JsonValue* version = doc.find("schema_version");
  if (version == nullptr || version->type != JsonValue::Type::kNumber) {
    error = std::string(label) + ": missing \"schema_version\"";
    return false;
  }
  schema = static_cast<int>(version->number);
  const JsonValue* kind = doc.find("kind");
  if (kind == nullptr || kind->string != "gridmon_campaign") {
    error = std::string(label) + ": \"kind\" is not \"gridmon_campaign\"";
    return false;
  }
  runs = doc.find("runs");
  if (runs == nullptr || runs->type != JsonValue::Type::kArray) {
    error = std::string(label) + ": missing \"runs\" array";
    return false;
  }
  return true;
}

std::string run_key(const JsonValue& run) {
  const JsonValue* scenario = run.find("scenario");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "#%llu",
                static_cast<unsigned long long>(
                    number_or(run, "seed", 0)));
  return (scenario != nullptr ? scenario->string : "?") + std::string(buf);
}

}  // namespace

CampaignDiff diff_campaigns(std::string_view baseline_json,
                            std::string_view candidate_json,
                            const DiffOptions& options) {
  CampaignDiff out;
  // Parsed documents are sizeable; keep them off the stack.
  auto base_doc = std::make_unique<JsonValue>();
  auto cand_doc = std::make_unique<JsonValue>();
  const JsonValue* base_runs = nullptr;
  const JsonValue* cand_runs = nullptr;
  if (!parse_campaign_doc(baseline_json, *base_doc, out.baseline_schema,
                          base_runs, out.error, "baseline") ||
      !parse_campaign_doc(candidate_json, *cand_doc, out.candidate_schema,
                          cand_runs, out.error, "candidate")) {
    return out;
  }
  if (out.baseline_schema != out.candidate_schema) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "schema_version mismatch: baseline is v%d, candidate is "
                  "v%d — re-export the baseline with this build before "
                  "diffing",
                  out.baseline_schema, out.candidate_schema);
    out.error = buf;
    return out;
  }
  out.comparable = true;

  // Align by (scenario, seed); insertion order of the baseline drives the
  // report order.
  std::map<std::string, const JsonValue*> candidates;
  for (const JsonValue& run : cand_runs->array) {
    candidates.emplace(run_key(run), &run);
  }

  for (const JsonValue& base : base_runs->array) {
    const std::string key = run_key(base);
    auto it = candidates.find(key);
    if (it == candidates.end()) {
      out.only_baseline.push_back(key);
      continue;
    }
    const JsonValue& cand = *it->second;
    candidates.erase(it);

    RunDiff diff;
    diff.scenario_id = base.find("scenario") != nullptr
                           ? base.find("scenario")->string
                           : "?";
    diff.seed = static_cast<std::uint64_t>(number_or(base, "seed", 0));
    // Backend name (schema v2 `system` key). A flip between documents is
    // a configuration error worth surfacing, not a metric regression.
    const JsonValue* base_system = base.find("system");
    const JsonValue* cand_system = cand.find("system");
    const std::string base_sys =
        base_system != nullptr ? base_system->string : "";
    const std::string cand_sys =
        cand_system != nullptr ? cand_system->string : "";
    if (!base_sys.empty() && !cand_sys.empty() && base_sys != cand_sys) {
      diff.system = base_sys + " -> " + cand_sys;
    } else {
      diff.system = cand_sys.empty() ? base_sys : cand_sys;
    }
    for (const DiffMetric& metric : kDiffMetrics) {
      MetricDelta delta;
      delta.name = metric.key;
      delta.advisory = metric.advisory;
      bool base_present = false;
      bool cand_present = false;
      delta.baseline = number_or(base, metric.key, 0.0, &base_present);
      delta.candidate = number_or(cand, metric.key, 0.0, &cand_present);
      delta.present = base_present && cand_present;
      if (!delta.present) continue;  // e.g. timing-free exports
      if (delta.baseline != 0.0) {
        delta.delta_pct =
            100.0 * (delta.candidate - delta.baseline) / delta.baseline;
      } else {
        delta.delta_pct = delta.candidate == 0.0 ? 0.0 : 100.0;
      }
      const double tolerance = metric.advisory ? options.timing_tolerance_pct
                                               : options.rel_tolerance_pct;
      if (std::fabs(delta.delta_pct) > tolerance) {
        const bool worsened =
            metric.direction == DiffMetric::Direction::kNeutral ||
            (metric.direction == DiffMetric::Direction::kLowerBetter
                 ? delta.delta_pct > 0
                 : delta.delta_pct < 0);
        if (worsened) {
          delta.regression = true;
        } else {
          delta.improvement = true;
        }
      }
      if (delta.regression && !metric.advisory) diff.regression = true;
      diff.metrics.push_back(std::move(delta));
    }

    const int base_slo = slo_verdict(base);
    const int cand_slo = slo_verdict(cand);
    if (base_slo != cand_slo) {
      auto name = [](int v) {
        return v < 0 ? "none" : (v > 0 ? "pass" : "FAIL");
      };
      diff.slo_note = std::string(name(base_slo)) + " -> " + name(cand_slo);
      if (cand_slo == 0) diff.regression = true;
    }
    if (diff.regression) out.regression = true;
    out.runs.push_back(std::move(diff));
  }
  for (const auto& [key, run] : candidates) {
    (void)run;
    out.only_candidate.push_back(key);
  }
  return out;
}

std::string CampaignDiff::table() const {
  std::string out;
  if (!comparable) {
    out = "diff refused: " + error + "\n";
    return out;
  }
  char buf[256];
  for (const RunDiff& run : runs) {
    std::snprintf(buf, sizeof(buf), "%s seed %llu%s%s%s%s\n",
                  run.scenario_id.c_str(),
                  static_cast<unsigned long long>(run.seed),
                  run.system.empty() ? "" : "  [",
                  run.system.empty() ? "" : (run.system + "]").c_str(),
                  run.slo_note.empty() ? "" : "  [slo ",
                  run.slo_note.empty() ? ""
                                       : (run.slo_note + "]").c_str());
    out += buf;
    for (const MetricDelta& m : run.metrics) {
      // Quiet metrics stay out of the table; the JSON verdict has them.
      if (!m.regression && !m.improvement) continue;
      std::snprintf(buf, sizeof(buf), "  %-18s %14.3f -> %14.3f  %+8.2f%% %s\n",
                    m.name.c_str(), m.baseline, m.candidate, m.delta_pct,
                    m.advisory ? "(advisory)"
                               : (m.regression ? "REGRESSION" : "improved"));
      out += buf;
    }
  }
  for (const std::string& key : only_baseline) {
    out += "only in baseline: " + key + "\n";
  }
  for (const std::string& key : only_candidate) {
    out += "only in candidate: " + key + "\n";
  }
  std::snprintf(buf, sizeof(buf),
                "%d run(s) compared: %s\n", static_cast<int>(runs.size()),
                regression ? "REGRESSION" : "ok");
  out += buf;
  return out;
}

std::string CampaignDiff::json() const {
  char buf[256];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf),
                "\"schema_version\": %d, \"kind\": \"gridmon_diff\", "
                "\"comparable\": %s, \"regression\": %s",
                kCampaignSchemaVersion, comparable ? "true" : "false",
                regression ? "true" : "false");
  out += buf;
  if (!comparable) {
    out += ", \"error\": \"" + error + "\"}\n";
    return out;
  }
  out += ", \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunDiff& run = runs[i];
    std::snprintf(buf, sizeof(buf),
                  "  {\"scenario\": \"%s\", \"seed\": %llu, "
                  "\"regression\": %s",
                  run.scenario_id.c_str(),
                  static_cast<unsigned long long>(run.seed),
                  run.regression ? "true" : "false");
    out += buf;
    if (!run.system.empty()) {
      out += ", \"system\": \"" + run.system + "\"";
    }
    if (!run.slo_note.empty()) {
      out += ", \"slo_change\": \"" + run.slo_note + "\"";
    }
    out += ", \"metrics\": {";
    bool first = true;
    for (const MetricDelta& m : run.metrics) {
      if (!first) out += ", ";
      first = false;
      std::snprintf(buf, sizeof(buf),
                    "\"%s\": {\"baseline\": %.6g, \"candidate\": %.6g, "
                    "\"delta_pct\": %.3f, \"verdict\": \"%s\"}",
                    m.name.c_str(), m.baseline, m.candidate, m.delta_pct,
                    m.advisory
                        ? (m.regression || m.improvement ? "advisory" : "ok")
                        : (m.regression
                               ? "regression"
                               : (m.improvement ? "improvement" : "ok")));
      out += buf;
    }
    out += "}}";
    out += i + 1 < runs.size() ? ",\n" : "\n";
  }
  out += "]";
  auto emit_keys = [&](const char* field,
                       const std::vector<std::string>& keys) {
    out += std::string(", \"") + field + "\": [";
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + keys[i] + "\"";
    }
    out += "]";
  };
  emit_keys("only_baseline", only_baseline);
  emit_keys("only_candidate", only_candidate);
  out += "}\n";
  return out;
}

}  // namespace gridmon::core
