#include "core/report.hpp"

namespace gridmon::core {

std::vector<double> rtt_row(const Results& results) {
  return {results.metrics.rtt_mean_ms(), results.metrics.rtt_stddev_ms()};
}

std::vector<double> percentile_row(const Results& results) {
  std::vector<double> out;
  out.reserve(paper_percentiles().size());
  for (double pct : paper_percentiles()) {
    out.push_back(results.metrics.rtt_percentile_ms(pct));
  }
  return out;
}

std::vector<double> resource_row(const Results& results) {
  return {results.servers.cpu_idle_pct,
          static_cast<double>(results.servers.memory_bytes) /
              static_cast<double>(units::MiB)};
}

std::vector<double> decomposition_row(const Results& results) {
  const double prt = results.metrics.prt_ms().mean();
  const double pt = results.metrics.pt_ms().mean();
  const double srt = results.metrics.srt_ms().mean();
  return {0.0, prt, prt + pt, prt + pt + srt};
}

std::string grade_realtime(const Results& results) {
  const double p998 = results.metrics.rtt_percentile_ms(99.8);
  if (p998 <= 100.0) return "Very good";
  if (p998 <= 1000.0) return "Good";
  if (p998 <= 5000.0) return "Average";
  return "Poor";
}

}  // namespace gridmon::core
