#include <memory>
#include <unordered_map>

#include "cluster/hydra.hpp"
#include "cluster/vmstat.hpp"
#include "core/experiment.hpp"
#include "core/payloads.hpp"
#include "rgma/network.hpp"
#include "rgma/secondary_producer.hpp"
#include "util/log.hpp"

namespace gridmon::core {
namespace {

constexpr SimTime kStartTime = units::seconds(1);
constexpr const char* kTable = "generators";
constexpr const char* kSecondaryTable = "generators_sp";

struct SentRecord {
  SimTime before_sending;
  SimTime after_sending;
};

[[nodiscard]] std::int64_t row_key(std::int64_t id, std::int64_t seq) {
  return id * 1'000'000'000 + seq;
}

/// One simulated power generator on the R-GMA side: owns a PrimaryProducer
/// registration and inserts a row every period (§III.F).
class RgmaGenerator {
 public:
  RgmaGenerator(cluster::Hydra& hydra, int host, net::HttpClient& http,
                net::Endpoint service, const RgmaConfig& config,
                std::int64_t id, Metrics& metrics,
                std::uint64_t& refused_in_faults,
                const FaultInjector*& injector,
                std::unordered_map<std::int64_t, SentRecord>& in_flight,
                AvailabilityTracker& tracker)
      : hydra_(hydra),
        config_(config),
        id_(id),
        metrics_(metrics),
        refused_in_faults_(refused_in_faults),
        injector_(injector),
        in_flight_(in_flight),
        tracker_(tracker),
        rng_(hydra.sim().rng_stream("rgma.generator").stream(
            static_cast<std::uint64_t>(id))),
        // Replay runs widen producer retention to the configured tiers so a
        // reconnecting consumer's history query can cover its poll gap.
        producer_(hydra.host(host), http, service, static_cast<int>(id),
                  kTable,
                  config.replay.enabled ? config.replay.retention.raw_window
                                        : units::seconds(30),
                  config.replay.enabled
                      ? config.replay.retention.downsampled_window
                      : units::seconds(60)) {
    if (config.fleet.recovery) {
      producer_.enable_redeclare(config.fleet.backoff_initial,
                                 config.fleet.backoff_max);
    }
  }

  [[nodiscard]] std::uint64_t redeclares() const {
    return producer_.redeclares();
  }

  void start() {
    producer_.declare([this](bool ok) {
      if (!ok) {
        metrics_.count_refused_connection();
        if (injector_ != nullptr &&
            in_fault_window(injector_->windows(), hydra_.sim().now())) {
          ++refused_in_faults_;
        }
        return;
      }
      remaining_ = config_.fleet.publish_period > 0
                       ? config_.duration / config_.fleet.publish_period
                       : 0;
      SimTime warmup;
      if (config_.fleet.warmup_max > 0) {
        warmup = static_cast<SimTime>(
            rng_.uniform(static_cast<double>(config_.fleet.warmup_min),
                         static_cast<double>(config_.fleet.warmup_max)));
      } else {
        // No warm-up wait (the paper's loss experiment): the publish loop
        // still starts at a uniformly random phase within one period, so a
        // producer's first insert races the mediator's attachment — most
        // win, some lose their first tuple.
        warmup = static_cast<SimTime>(
            rng_.uniform(0.0, static_cast<double>(config_.fleet.publish_period)));
      }
      hydra_.sim().schedule_after(warmup, [this] { insert_next(); });
    });
  }

 private:
  void insert_next() {
    if (remaining_ <= 0) return;
    --remaining_;
    const SimTime before = hydra_.sim().now();
    const std::int64_t seq = sequence_++;
    auto row = make_generator_row(id_, seq, before, rng_);
    // Count at insert intent: a 503 from a crashed container is a loss and
    // must be visible as one. (Fault-free runs are unchanged — inserts by
    // declared producers always succeed.)
    metrics_.count_sent();
    in_flight_.emplace(row_key(id_, seq), SentRecord{before, before});
    obs::mark_row(id_, seq, "pub");
    producer_.insert(std::move(row), [this, before, seq](bool ok,
                                                         SimTime after) {
      const auto it = in_flight_.find(row_key(id_, seq));
      if (it == in_flight_.end()) return;
      if (ok) {
        it->second.after_sending = after;
        obs::mark_row_at(id_, seq, "sent", after);
      } else {
        tracker_.classify_loss(before);
        in_flight_.erase(it);
      }
    });
    hydra_.sim().schedule_after(config_.fleet.publish_period,
                                [this] { insert_next(); });
  }

  cluster::Hydra& hydra_;
  const RgmaConfig& config_;
  std::int64_t id_;
  Metrics& metrics_;
  std::uint64_t& refused_in_faults_;
  const FaultInjector*& injector_;
  std::unordered_map<std::int64_t, SentRecord>& in_flight_;
  AvailabilityTracker& tracker_;
  util::Rng rng_;
  rgma::PrimaryProducer producer_;
  std::int64_t sequence_ = 0;
  std::int64_t remaining_ = 0;
};

/// The subscriber program: polls the Consumer every 100 ms and logs
/// received tuples (the paper notes this adds up to 100 ms of measurement
/// quantisation).
class Subscriber {
 public:
  Subscriber(cluster::Hydra& hydra, int host, net::HttpClient& http,
             net::Endpoint consumer_service, int consumer_id,
             std::string query, SimTime poll_period, Metrics& metrics,
             std::unordered_map<std::int64_t, SentRecord>& in_flight,
             AvailabilityTracker& tracker, SimTime create_retry = 0)
      : hydra_(hydra),
        consumer_(hydra.host(host), http, consumer_service, consumer_id,
                  std::move(query)),
        poll_period_(poll_period),
        metrics_(metrics),
        in_flight_(in_flight),
        tracker_(tracker),
        create_retry_(create_retry) {
    if (create_retry > 0) consumer_.enable_retry(create_retry);
  }

  void start() {
    consumer_.create([this](bool ok) {
      if (!ok) {
        GRIDMON_WARN("rgma.subscriber") << "consumer creation refused";
        if (create_retry_ > 0) {
          hydra_.sim().schedule_after(create_retry_, [this] { start(); });
        }
        return;
      }
      if (!timer_.active()) {
        timer_ = sim::PeriodicTimer(
            hydra_.sim(), hydra_.sim().now() + poll_period_, poll_period_,
            [this] { poll(); });
      }
    });
  }

  void stop() { timer_.cancel(); }

  /// Observability: RTT histogram deliveries record into (null = off).
  void set_rtt_series(obs::HistogramSeries* series) { rtt_series_ = series; }

  /// Reconnect backfill: after each successful re-create, replay the poll
  /// gap from producer history retention. Re-delivered rows are dropped by
  /// the in-flight map, so only genuinely missed rows count.
  void enable_replay() {
    consumer_.enable_replay(
        [this](std::vector<rgma::Tuple> tuples, SimTime issued) {
          process(std::move(tuples), issued, /*backfill=*/true);
        });
  }

  [[nodiscard]] std::uint64_t recreates() const {
    return consumer_.recreates();
  }
  [[nodiscard]] std::uint64_t backfill_tuples() const {
    return consumer_.backfill_tuples();
  }
  [[nodiscard]] std::int64_t backfill_bytes() const {
    return consumer_.backfill_bytes();
  }

 private:
  void poll() {
    if (polling_) return;  // the previous poll has not returned yet
    polling_ = true;
    consumer_.poll([this](std::vector<rgma::Tuple> tuples,
                          SimTime before_receiving) {
      polling_ = false;
      process(std::move(tuples), before_receiving, /*backfill=*/false);
    });
  }

  void process(std::vector<rgma::Tuple> tuples, SimTime before_receiving,
               bool backfill) {
    const SimTime now = hydra_.sim().now();
    for (const auto& tuple : tuples) {
      if (tuple.values.size() <= kRowSentColumn) continue;
      const auto* id = std::get_if<std::int64_t>(&tuple.values[kRowIdColumn]);
      const auto* seq =
          std::get_if<std::int64_t>(&tuple.values[kRowSeqColumn]);
      if (id == nullptr || seq == nullptr) continue;
      const auto it = in_flight_.find(row_key(*id, *seq));
      if (it == in_flight_.end()) continue;
      tracker_.on_delivery(now);
      metrics_.record(it->second.before_sending, it->second.after_sending,
                      before_receiving, now);
      if (rtt_series_ != nullptr) {
        rtt_series_->record(
            units::to_millis(now - it->second.before_sending));
      }
      if (obs::Recorder* r = obs::tracer()) {
        const obs::TraceKey key = obs::key_of(*id, *seq);
        r->mark_at(key, backfill ? "backfill" : "recv", before_receiving);
        r->mark(key, "done");
        r->complete(key);
      }
      in_flight_.erase(it);
    }
  }

  cluster::Hydra& hydra_;
  rgma::Consumer consumer_;
  SimTime poll_period_;
  Metrics& metrics_;
  std::unordered_map<std::int64_t, SentRecord>& in_flight_;
  AvailabilityTracker& tracker_;
  SimTime create_retry_;
  sim::PeriodicTimer timer_;
  bool polling_ = false;
  obs::HistogramSeries* rtt_series_ = nullptr;
};

}  // namespace

Results run_rgma_experiment(const RgmaConfig& config) {
  cluster::HydraConfig hydra_config;
  hydra_config.seed = config.seed;
  cluster::Hydra hydra(hydra_config);

  // Deployment: single server (everything on host 0) or the paper's
  // distributed architecture (2 producer nodes, 2 consumer nodes).
  rgma::RgmaNetworkConfig net_config;
  if (config.distributed) {
    net_config.registry_host = 0;
    net_config.producer_hosts = {0, 1};
    net_config.consumer_hosts = {2, 3};
  } else {
    net_config.registry_host = 0;
    net_config.producer_hosts = {0};
    net_config.consumer_hosts = {0};
  }
  net_config.secure = config.secure;
  net_config.legacy_stream_api = config.legacy_stream_api;
  rgma::RgmaNetwork network(hydra, net_config);
  network.create_table(generator_table(kTable));
  if (config.via_secondary_producer) {
    network.create_table(generator_table(kSecondaryTable));
  }

  // Soft-state expiry and renewal heartbeats (the recovery policy that
  // rebuilds a wiped registry purely from periodic re-assertions).
  if (config.registry_ttl > 0) {
    network.registry().set_registration_ttl(config.registry_ttl);
  }
  if (config.fleet.recovery) {
    for (int i = 0; i < network.producer_service_count(); ++i) {
      network.producer_service(i).enable_registration_renewal(
          config.renewal_period);
    }
    for (int i = 0; i < network.consumer_service_count(); ++i) {
      network.consumer_service(i).enable_registration_renewal(
          config.renewal_period);
    }
  }
  if (config.request_timeout > 0) {
    // Half-open-registry rescue: bound every service→registry round trip so
    // wedged (accepted-but-never-answered) requests fail with 408 instead
    // of stranding the renewal/registration handlers forever.
    for (int i = 0; i < network.producer_service_count(); ++i) {
      network.producer_service(i).set_registry_timeout(config.request_timeout);
    }
    for (int i = 0; i < network.consumer_service_count(); ++i) {
      network.consumer_service(i).set_registry_timeout(config.request_timeout);
    }
  }

  Results results;
  results.metrics.set_deadline(units::seconds(5));
  results.generators = config.fleet.generators;
  std::unordered_map<std::int64_t, SentRecord> in_flight;
  std::uint64_t refused_in_faults = 0;
  const FaultInjector* injector_ptr = nullptr;
  AvailabilityTracker tracker;

  // Observability: one recorder for the run, installed thread-locally so
  // servlet mark helpers route to it (see narada_experiment.cpp).
  std::unique_ptr<obs::Recorder> recorder;
  std::unique_ptr<obs::MemProfile> memprof;
  obs::HistogramSeries* rtt_series = nullptr;
  if (obs::kEnabled && config.obs.enabled) {
    recorder = std::make_unique<obs::Recorder>(hydra.sim(), config.obs);
    auto& timeline = recorder->timeline();
    timeline.gauge("sent");
    timeline.gauge("received");
    rtt_series = &timeline.histogram("rtt_ms");
    timeline.gauge("kernel_events");
    timeline.gauge("kernel_queue_depth");
    timeline.gauge("lan_in_flight");
    timeline.gauge("lan_dropped");
    timeline.gauge("pp_tuples_streamed");
    timeline.gauge("pp_batches_sent");
    timeline.gauge("cs_batches_received");
    timeline.gauge("cs_tuples_matched");
    timeline.gauge("cs_polls_served");
    if (config.obs.memprof) {
      // Memory-footprint gauges after the classic columns (the series
      // prefix is pinned by obs_test).
      memprof = std::make_unique<obs::MemProfile>();
      timeline.gauge("mem_rgma_tuples");
      timeline.gauge("mem_net_connections");
      timeline.gauge("mem_kernel_slab");
      timeline.gauge("mem_predicate_cache");
      timeline.gauge("mem_total");
    }
    if (config.replay.enabled) {
      // Replication columns ride last, and only on replay runs, so the
      // classic timeline shape is untouched.
      timeline.gauge("backfill_msgs");
      timeline.gauge("backfill_bytes");
      if (config.obs.memprof) timeline.gauge("mem_history");
    }
  }
  obs::ScopedRecorder scoped(recorder.get());
  obs::ScopedMemProfile scoped_mem(memprof.get());

  // Client hosts: 4–7 run generator programs and the subscriber(s).
  const std::vector<int> client_hosts = {4, 5, 6, 7};
  std::vector<std::unique_ptr<net::HttpClient>> http_clients;
  for (int host : client_hosts) {
    http_clients.push_back(std::make_unique<net::HttpClient>(
        hydra.streams(), net::Endpoint{host, 20000}));
  }
  auto http_for = [&](std::size_t index) -> net::HttpClient& {
    return *http_clients[index % http_clients.size()];
  };

  // Secondary Producer chain (Fig 10): generators → PP("generators") →
  // SP(deliberate delay) → PP("generators_sp") → Consumer → subscriber.
  std::unique_ptr<rgma::SecondaryProducer> secondary;
  std::unique_ptr<net::HttpClient> secondary_http;
  if (config.via_secondary_producer) {
    const int sp_host = config.distributed ? 1 : 0;
    secondary_http = std::make_unique<net::HttpClient>(
        hydra.streams(), net::Endpoint{sp_host, 21000});
    secondary = std::make_unique<rgma::SecondaryProducer>(
        hydra.host(sp_host), *secondary_http,
        network.assign_consumer_service(), network.assign_producer_service(),
        900000, kTable, kSecondaryTable, config.secondary_delay);
    hydra.sim().schedule_at(kStartTime / 2,
                            [&secondary] { secondary->start(nullptr); });
  }

  // Subscriber(s): one per consumer service, partitioned by generator id so
  // every row is delivered exactly once.
  const std::string table_to_watch =
      config.via_secondary_producer ? kSecondaryTable : kTable;
  std::vector<std::unique_ptr<Subscriber>> subscribers;
  const int consumer_services = network.consumer_service_count();
  for (int c = 0; c < consumer_services; ++c) {
    std::string query = "SELECT * FROM " + table_to_watch;
    if (consumer_services > 1) {
      // Content-based partitioning across consumer services.
      const int share = config.fleet.generators / consumer_services + 1;
      const int lo = c * share;
      const int hi = lo + share;
      query += " WHERE id >= " + std::to_string(lo) + " AND id < " +
               std::to_string(hi);
    } else {
      query += " WHERE id < 1000000";  // the paper-style no-op filter
    }
    subscribers.push_back(std::make_unique<Subscriber>(
        hydra, client_hosts[static_cast<std::size_t>(c) % client_hosts.size()],
        http_for(static_cast<std::size_t>(c)),
        network.consumer_service(c).endpoint(), 800000 + c, std::move(query),
        config.poll_period, results.metrics, in_flight, tracker,
        config.fleet.recovery ? config.consumer_retry : SimTime{0}));
    if (config.replay.enabled) subscribers.back()->enable_replay();
    subscribers.back()->set_rtt_series(rtt_series);
    hydra.sim().schedule_at(kStartTime / 2, [sub = subscribers.back().get()] {
      sub->start();
    });
  }

  // Producer fleet on the paper's 1 s creation stagger.
  std::vector<std::unique_ptr<RgmaGenerator>> fleet;
  fleet.reserve(static_cast<std::size_t>(config.fleet.generators));
  for (int g = 0; g < config.fleet.generators; ++g) {
    const std::size_t client = static_cast<std::size_t>(g) % client_hosts.size();
    fleet.push_back(std::make_unique<RgmaGenerator>(
        hydra, client_hosts[client], http_for(client),
        network.assign_producer_service(), config, g, results.metrics,
        refused_in_faults, injector_ptr, in_flight, tracker));
    hydra.sim().schedule_at(kStartTime + config.fleet.creation_interval * g,
                            [gen = fleet.back().get()] { gen->start(); });
  }

  // vmstat over the steady window on every server host.
  std::vector<int> server_hosts = net_config.producer_hosts;
  for (int h : net_config.consumer_hosts) {
    bool seen = false;
    for (int s : server_hosts) seen |= (s == h);
    if (!seen) server_hosts.push_back(h);
  }
  const SimTime steady_begin = kStartTime +
                               config.fleet.creation_interval * config.fleet.generators +
                               config.fleet.warmup_max;
  const SimTime measure_end = steady_begin + config.duration;

  // Fault injection: bridge FaultPlan events onto the LAN and the R-GMA
  // service containers. All fire at fixed virtual times.
  FaultHooks hooks;
  hooks.set_nic = [&hydra](int node, bool down) {
    hydra.lan().set_node_down(node, down);
  };
  hooks.set_link_loss = [&hydra](int src, int dst, double p, bool active) {
    if (active) {
      hydra.lan().set_link_loss(src, dst, p);
    } else {
      hydra.lan().clear_link_loss(src, dst);
    }
  };
  hooks.set_registry_down = [&network](bool down) {
    if (down) {
      network.registry().crash();
    } else {
      network.registry().restart();
    }
  };
  hooks.set_producer_servlet_down = [&network](int i, bool down) {
    if (i < 0 || i >= network.producer_service_count()) return;
    if (down) {
      network.producer_service(i).crash();
    } else {
      network.producer_service(i).restart();
    }
  };
  hooks.set_consumer_servlet_down = [&network](int i, bool down) {
    if (i < 0 || i >= network.consumer_service_count()) return;
    if (down) {
      network.consumer_service(i).crash();
    } else {
      network.consumer_service(i).restart();
    }
  };
  hooks.expire_registrations = [&network] { network.registry().expire_now(); };
  hooks.set_registry_half_open = [&network](bool half_open) {
    network.registry().set_half_open(half_open);
  };
  FaultInjector injector(hydra.sim(), config.faults, hooks);
  injector.arm(steady_begin);
  injector_ptr = &injector;
  tracker.set_windows(injector.windows());
  if (recorder) {
    for (const FaultEvent& event : config.faults.events) {
      const SimTime base =
          event.anchor == FaultAnchor::kSteady ? steady_begin : 0;
      recorder->add_chaos(std::string(to_string(event.kind)), base + event.at,
                          base + event.at + event.duration);
    }
    recorder->set_sampler([&results, &hydra, &network, &subscribers,
                           prof = memprof.get(),
                           replay = config.replay.enabled](
                              obs::Timeline& timeline) {
      timeline.gauge("sent").set(
          static_cast<double>(results.metrics.sent()));
      timeline.gauge("received").set(
          static_cast<double>(results.metrics.received()));
      timeline.gauge("kernel_events").set(
          static_cast<double>(hydra.sim().kernel_stats().events_executed));
      timeline.gauge("kernel_queue_depth").set(
          static_cast<double>(hydra.sim().queue_size()));
      timeline.gauge("lan_in_flight").set(
          static_cast<double>(hydra.lan().datagrams_in_flight()));
      timeline.gauge("lan_dropped").set(
          static_cast<double>(hydra.lan().datagrams_dropped()));
      std::uint64_t tuples_streamed = 0;
      std::uint64_t batches_sent = 0;
      for (int i = 0; i < network.producer_service_count(); ++i) {
        const auto& stats = network.producer_service(i).stats();
        tuples_streamed += stats.tuples_streamed;
        batches_sent += stats.batches_sent;
      }
      std::uint64_t batches_received = 0;
      std::uint64_t tuples_matched = 0;
      std::uint64_t polls_served = 0;
      for (int i = 0; i < network.consumer_service_count(); ++i) {
        const auto& stats = network.consumer_service(i).stats();
        batches_received += stats.batches_received;
        tuples_matched += stats.tuples_matched;
        polls_served += stats.polls_served;
      }
      timeline.gauge("pp_tuples_streamed")
          .set(static_cast<double>(tuples_streamed));
      timeline.gauge("pp_batches_sent")
          .set(static_cast<double>(batches_sent));
      timeline.gauge("cs_batches_received")
          .set(static_cast<double>(batches_received));
      timeline.gauge("cs_tuples_matched")
          .set(static_cast<double>(tuples_matched));
      timeline.gauge("cs_polls_served")
          .set(static_cast<double>(polls_served));
      if (prof != nullptr) {
        prof->set(obs::MemCategory::kKernelSlab,
                  static_cast<std::int64_t>(
                      hydra.sim().kernel_stats().slab_bytes));
        timeline.gauge("mem_rgma_tuples")
            .set(static_cast<double>(
                prof->live(obs::MemCategory::kRgmaTuples)));
        timeline.gauge("mem_net_connections")
            .set(static_cast<double>(
                prof->live(obs::MemCategory::kNetConnections)));
        timeline.gauge("mem_kernel_slab")
            .set(static_cast<double>(
                prof->live(obs::MemCategory::kKernelSlab)));
        timeline.gauge("mem_predicate_cache")
            .set(static_cast<double>(
                prof->live(obs::MemCategory::kPredicateCache)));
        timeline.gauge("mem_total")
            .set(static_cast<double>(prof->live_total()));
      }
      if (replay) {
        std::uint64_t backfill_tuples = 0;
        std::int64_t backfill_bytes = 0;
        for (const auto& sub : subscribers) {
          backfill_tuples += sub->backfill_tuples();
          backfill_bytes += sub->backfill_bytes();
        }
        timeline.gauge("backfill_msgs")
            .set(static_cast<double>(backfill_tuples));
        timeline.gauge("backfill_bytes")
            .set(static_cast<double>(backfill_bytes));
        if (prof != nullptr) {
          timeline.gauge("mem_history")
              .set(static_cast<double>(
                  prof->live(obs::MemCategory::kHistory)));
        }
      }
    });
    recorder->arm(kStartTime);
  }
  std::vector<std::unique_ptr<cluster::VmstatSampler>> mem_samplers;
  std::vector<std::unique_ptr<cluster::VmstatSampler>> cpu_samplers;
  for (int host : server_hosts) {
    mem_samplers.push_back(
        std::make_unique<cluster::VmstatSampler>(hydra.host(host)));
    cpu_samplers.push_back(
        std::make_unique<cluster::VmstatSampler>(hydra.host(host)));
    auto* mem = mem_samplers.back().get();
    auto* cpu = cpu_samplers.back().get();
    hydra.sim().schedule_at(kStartTime, [mem] { mem->start(); });
    hydra.sim().schedule_at(steady_begin, [cpu] { cpu->start(); });
    hydra.sim().schedule_at(measure_end, [mem, cpu] {
      mem->stop();
      cpu->stop();
    });
  }

  const SimTime drain = units::seconds(30) + config.secondary_delay +
                        (config.via_secondary_producer ? units::seconds(30)
                                                       : SimTime{0});
  const SimTime horizon = measure_end + drain;
  hydra.sim().run_until(horizon);

  double idle_sum = 0.0;
  std::int64_t mem_sum = 0;
  for (auto& sampler : cpu_samplers) idle_sum += sampler->mean_cpu_idle();
  for (auto& sampler : mem_samplers) mem_sum += sampler->memory_consumption();
  results.servers.cpu_idle_pct =
      idle_sum / static_cast<double>(cpu_samplers.size());
  results.servers.memory_bytes =
      mem_sum / static_cast<std::int64_t>(mem_samplers.size());
  for (int host : server_hosts) {
    results.wire_bytes += hydra.lan().bytes_to_node(host);
  }
  results.refused = results.metrics.refused_connections();
  results.refused_in_faults = refused_in_faults;
  results.completed = !results.hit_oom_wall();
  results.kernel = hydra.sim().kernel_stats();
  if (memprof) {
    memprof->set(obs::MemCategory::kKernelSlab,
                 static_cast<std::int64_t>(results.kernel.slab_bytes));
    results.mem = memprof->summary();
  }

  // Availability: classify undelivered rows against the fault windows
  // (order-independent sums), then fold in recovery effort.
  for (const auto& [key, sent] : in_flight) {
    tracker.classify_loss(sent.before_sending);
  }
  results.availability = tracker.finalise(horizon);
  results.availability.fault_events = injector.injected();
  results.availability.delivered_late = results.metrics.delivered_late();
  results.availability.reregistrations =
      network.registry().reregistrations();
  for (const auto& gen : fleet) {
    results.availability.reregistrations += gen->redeclares();
  }
  for (const auto& sub : subscribers) {
    results.availability.resubscribes += sub->recreates();
    results.availability.backfill_msgs += sub->backfill_tuples();
    results.availability.backfill_bytes += sub->backfill_bytes();
  }
  if (recorder) results.obs = recorder->finish(horizon);
  return results;
}

}  // namespace gridmon::core
