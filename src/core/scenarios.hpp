// The paper's experiment catalogue: one named configuration per table /
// figure, so tests, benches and examples share identical setups.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace gridmon::core::scenarios {

/// Table II / Fig 3 / Fig 4: the six comparison tests at 800 connections
/// (80 for test 6), 30 minutes, on a single broker.
struct ComparisonTest {
  std::string label;
  NaradaConfig config;
};
[[nodiscard]] std::vector<ComparisonTest> narada_comparison_tests(
    std::uint64_t seed = 1);

/// Fig 6–8: single-broker scaling points (the paper plots 500–3000 and
/// notes the OOM wall at 4000).
[[nodiscard]] NaradaConfig narada_single(int connections,
                                         std::uint64_t seed = 1);

/// Fig 6, 7, 9: DBN scaling points (4 brokers: 2 publishing,
/// 2 subscribing).
[[nodiscard]] NaradaConfig narada_dbn(int connections, std::uint64_t seed = 1);

/// Fig 11–13: R-GMA Primary Producer + Consumer on a single server.
[[nodiscard]] RgmaConfig rgma_single(int connections, std::uint64_t seed = 1);

/// Fig 11, 13, 14: distributed R-GMA (2 producer + 2 consumer nodes).
[[nodiscard]] RgmaConfig rgma_distributed(int connections,
                                          std::uint64_t seed = 1);

/// Fig 10: Primary + Secondary Producer chain.
[[nodiscard]] RgmaConfig rgma_with_secondary(int connections,
                                             std::uint64_t seed = 1);

/// §III.F: the no-warm-up loss experiment (400 producers publishing
/// immediately; the paper measured 0.17 % loss).
[[nodiscard]] RgmaConfig rgma_no_warmup(std::uint64_t seed = 1);

/// Duration override helper for fast CI runs (benches use the full
/// 30-minute paper setting by default; tests shrink it).
void set_quick_mode_minutes(int minutes);
[[nodiscard]] SimTime scenario_duration();

}  // namespace gridmon::core::scenarios
