// The paper's experiment catalogue: one named configuration per table /
// figure, so tests, benches and examples share identical setups.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace gridmon::core::scenarios {

/// Table II / Fig 3 / Fig 4: the six comparison tests at 800 connections
/// (80 for test 6), 30 minutes, on a single broker.
struct ComparisonTest {
  std::string label;
  NaradaConfig config;
};
[[nodiscard]] std::vector<ComparisonTest> narada_comparison_tests(
    std::uint64_t seed = 1);

/// Fig 6–8: single-broker scaling points (the paper plots 500–3000 and
/// notes the OOM wall at 4000).
[[nodiscard]] NaradaConfig narada_single(int connections,
                                         std::uint64_t seed = 1);

/// Fig 6, 7, 9: DBN scaling points (4 brokers: 2 publishing,
/// 2 subscribing).
[[nodiscard]] NaradaConfig narada_dbn(int connections, std::uint64_t seed = 1);

/// Fig 11–13: R-GMA Primary Producer + Consumer on a single server.
[[nodiscard]] RgmaConfig rgma_single(int connections, std::uint64_t seed = 1);

/// Fig 11, 13, 14: distributed R-GMA (2 producer + 2 consumer nodes).
[[nodiscard]] RgmaConfig rgma_distributed(int connections,
                                          std::uint64_t seed = 1);

/// Fig 10: Primary + Secondary Producer chain.
[[nodiscard]] RgmaConfig rgma_with_secondary(int connections,
                                             std::uint64_t seed = 1);

/// §III.F: the no-warm-up loss experiment (400 producers publishing
/// immediately; the paper measured 0.17 % loss).
[[nodiscard]] RgmaConfig rgma_no_warmup(std::uint64_t seed = 1);

/// Modern baseline: one MQTT broker, `connections` QoS-`qos` publishers,
/// one wildcard ('powergrid/#') monitoring subscriber. The counterpart of
/// narada_single for the three-backend comparisons.
[[nodiscard]] MqttConfig mqtt_single(int connections, int qos = 0,
                                     std::uint64_t seed = 1);

// Every factory returns the paper-faithful 30-minute configuration. Quick
// runs shrink the duration explicitly — per config via `scaled()`, or for a
// whole sweep via `CampaignOptions::duration` (core/campaign.hpp). There is
// deliberately no process-wide duration knob: campaign workers run scenarios
// concurrently, so scenario construction must be free of mutable globals.

}  // namespace gridmon::core::scenarios
