// The paper's exact monitoring payloads.
//
// NaradaBrokering tests: a JMS MapMessage with two int, five float, two
// long, three double and four string values (§III.E).
// R-GMA tests: four integer, eight double and four char(20) values wrapped
// in an SQL INSERT statement (§III.F).
//
// Both carry the generator id (used by the paper's "id<10000" selector) and
// the send timestamp the receiving program logs for RTT computation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jms/message.hpp"
#include "rgma/schema.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace gridmon::core {

/// Build the Narada monitoring MapMessage for one reading.
/// `origin_node` is stamped as a property so DBN subscribers can partition
/// deliveries by origin (the paper received data on the node that sent it).
/// `pad_bytes` > 0 appends filler to model the Triple-payload test.
[[nodiscard]] jms::Message make_generator_message(
    const std::string& topic, std::int64_t generator_id, std::int64_t sequence,
    int origin_node, util::Rng& rng, std::int64_t pad_bytes = 0);

/// The R-GMA monitoring table: 4 INTEGER + 8 DOUBLE + 4 CHAR(20).
/// Columns: id, seq, sent_us (send time, µs), status; power, voltage,
/// current, frequency, temperature, pressure, efficiency, loadpct;
/// name, site, model, state.
[[nodiscard]] rgma::TableDef generator_table(const std::string& name);

/// Build one R-GMA row for the table above.
[[nodiscard]] std::vector<rgma::SqlValue> make_generator_row(
    std::int64_t generator_id, std::int64_t sequence, SimTime sent_at,
    util::Rng& rng);

/// Column indices the experiment harness reads back.
inline constexpr std::size_t kRowIdColumn = 0;
inline constexpr std::size_t kRowSeqColumn = 1;
inline constexpr std::size_t kRowSentColumn = 2;

}  // namespace gridmon::core
