// The chaos/* scenario family: deterministic fault-injection campaigns.
//
// Each scenario pairs a classic experiment configuration with a FaultPlan
// and (usually) the recovery policies, plus a `_norecovery` twin where the
// comparison is the point: the availability columns (downtime, TTR,
// in-window vs post-window loss) only mean something against the baseline
// that never reconnects. Fault times are fixed virtual offsets — chaos runs
// are exactly as deterministic as the fault-free ones.
#include "core/registry.hpp"
#include "core/scenarios.hpp"

namespace gridmon::core {

void register_chaos_scenarios(ScenarioRegistry& reg) {
  // --- Narada ---------------------------------------------------------------

  // Broker crash at steady state, 10 s dwell, then restart. With recovery,
  // clients reconnect under capped exponential backoff and resubscribe, so
  // only in-window traffic is lost; without it, every message after the
  // crash is lost and TTR pins at the run horizon.
  {
    NaradaConfig config = scenarios::narada_single(800);
    config.faults.broker_crash(units::seconds(15), 0, units::seconds(10));
    config.fleet.recovery = true;
    // The SLO both twins are judged against: recovery holds it (TTR is
    // bounded by the dwell + reconnect backoff), the no-recovery baseline
    // violates it (TTR pins at the horizon) — the CI-gate fixture for
    // `gridmon_cli run --slo`.
    obs::SloSpec slo;
    slo.max_loss_pct(50.0)
        .max_ttr_ms(30000.0)
        .min_availability_pct(55.0);
    reg.add({"chaos/narada/broker_crash/800",
             "Chaos: single broker crashes 15 s into steady state (10 s "
             "dwell); clients reconnect + resubscribe",
             config, slo});
    config.fleet.recovery = false;
    reg.add({"chaos/narada/broker_crash/800_norecovery",
             "Chaos baseline: same broker crash, no client recovery (all "
             "post-crash traffic lost)",
             config, slo});
  }

  // DBN partition: the switch paths between publishing and subscribing
  // brokers are cut for 10 s (a cable cut, not a NIC fault — client links
  // stay up). Connections survive; cross-partition events are dropped.
  {
    NaradaConfig config = scenarios::narada_dbn(800);
    config.faults.dbn_partition(units::seconds(15), units::seconds(10));
    config.fleet.recovery = true;
    obs::SloSpec slo;
    slo.max_loss_pct(40.0)
        .max_loss_pct(2.0, obs::SloScope::kSteady)
        .max_ttr_ms(30000.0);
    reg.add({"chaos/narada/dbn_partition",
             "Chaos: 4-broker DBN split pub/sub for 10 s at steady state "
             "(inter-broker paths blocked)",
             config, slo});
  }

  // Subscriber NIC flap: the subscriber host drops off the LAN twice for
  // 5 s. TCP connections persist (a yanked cable, not a close), so loss is
  // confined to the windows — no reconnect is needed or triggered.
  {
    NaradaConfig config = scenarios::narada_single(400);
    config.faults.nic_down(units::seconds(15), 1, units::seconds(5))
        .nic_down(units::seconds(40), 1, units::seconds(5));
    obs::SloSpec slo;
    slo.max_loss_pct(2.0, obs::SloScope::kSteady)
        .max_ttr_ms(20000.0)
        .min_availability_pct(60.0);
    reg.add({"chaos/narada/nic_flap/400",
             "Chaos: subscriber host NIC flaps twice (5 s each) at steady "
             "state; loss confined to the windows",
             config, slo});
  }

  // UDP loss burst: LAN-wide datagram loss spikes to 30 % for 10 s on the
  // unreliable transport (a congestion event; JMS over UDP has no recovery
  // to offer, so there is no recovery twin).
  {
    NaradaConfig config = scenarios::narada_single(800);
    config.transport = narada::TransportKind::kUdp;
    config.faults.loss_burst(units::seconds(15), 0.30, units::seconds(10));
    obs::SloSpec slo;
    slo.max_loss_pct(15.0).max_loss_pct(8.0, obs::SloScope::kSteady);
    reg.add({"chaos/narada/udp_loss_burst/800",
             "Chaos: LAN datagram loss bursts to 30% for 10 s under the UDP "
             "transport",
             config, slo});
  }

  // --- MQTT -----------------------------------------------------------------

  // Flapping monitoring uplink: the subscriber host's NIC drops off the
  // LAN in three 8 s bursts (a yanked cable — the TCP connection itself
  // survives, in-flight frames vanish). At QoS 1 every in-window delivery
  // sits in the broker's in-flight window until PUBACKed, so the DUP
  // retransmission sweep redelivers it after the flap — holding the
  // paper's 0.5 % loss requirement. The QoS 0 twin streams through the
  // same flaps fire-and-forget and eats the in-window loss; worse, its
  // only upstream traffic is the 30 s PINGREQ, so one ping eaten by a
  // flap blows the broker's 1.5x keep-alive grace and the session is
  // expired — recovery (reconnect + resubscribe) is what puts the
  // subscriber back on the air at all.
  {
    MqttConfig config = scenarios::mqtt_single(800, /*qos=*/1);
    config.fleet.recovery = true;
    // Host 1 is the subscriber host (first non-broker host; see
    // run_mqtt_experiment).
    config.faults.nic_down(units::seconds(15), 1, units::seconds(8))
        .nic_down(units::seconds(45), 1, units::seconds(8))
        .nic_down(units::seconds(75), 1, units::seconds(8));
    obs::SloSpec slo;
    slo.max_loss_pct(0.5).max_ttr_ms(20000.0);
    reg.add({"chaos/mqtt/flapping_link/800",
             "Chaos: subscriber uplink flaps 3x8 s; QoS 1 broker "
             "retransmissions hold the 0.5% loss bound",
             config, slo});
    config.qos = 0;
    reg.add({"chaos/mqtt/flapping_link/800_qos0",
             "Chaos baseline: same uplink flaps at QoS 0 (fire-and-forget "
             "eats the in-window loss)",
             config, slo});
  }

  // Broker crash with persistent sessions: the process dies 15 s into
  // steady state (all in-memory state lost) and restarts empty after 10 s.
  // With recovery, clients reconnect under backoff, resubscribe (CONNACK
  // says session_present=0), and redeliver their own in-flight QoS 1
  // windows — the client-driven recovery story.
  {
    MqttConfig config = scenarios::mqtt_single(800, /*qos=*/1);
    config.clean_session = false;
    config.faults.broker_crash(units::seconds(15), 0, units::seconds(10));
    config.fleet.recovery = true;
    obs::SloSpec slo;
    slo.max_loss_pct(50.0).max_ttr_ms(30000.0).min_availability_pct(55.0);
    reg.add({"chaos/mqtt/broker_crash/800",
             "Chaos: MQTT broker crashes 15 s into steady state (10 s "
             "dwell); clients reconnect, resubscribe, redeliver QoS 1",
             config, slo});
    config.fleet.recovery = false;
    reg.add({"chaos/mqtt/broker_crash/800_norecovery",
             "Chaos baseline: same broker crash, no client recovery (all "
             "post-crash traffic lost)",
             config, slo});
  }

  // --- R-GMA ----------------------------------------------------------------

  // Registry outage during the creation ramp (anchored at run start: the
  // directory only matters while registrations and mediation happen). Soft
  // state is wiped; with recovery, renewal heartbeats re-register producers
  // and consumers and mediation re-forms the attachments — GMA's data-path/
  // directory separation means streaming itself never stops.
  {
    RgmaConfig config = scenarios::rgma_single(400);
    config.faults.registry_restart(units::seconds(60), units::seconds(120),
                                   FaultAnchor::kRunStart);
    config.registry_ttl = units::seconds(60);
    config.fleet.recovery = true;
    // GMA separates data path from directory: deliveries continue through
    // the outage, so the discriminating bound is whole-run loss (producers
    // that never mediate publish into the void).
    obs::SloSpec slo;
    slo.max_loss_pct(30.0);
    reg.add({"chaos/rgma/registry_outage/400",
             "Chaos: registry container down 60-180 s into the ramp (state "
             "wiped, TTL 60 s); renewals re-register",
             config, slo});
    config.fleet.recovery = false;
    reg.add({"chaos/rgma/registry_outage/400_norecovery",
             "Chaos baseline: same registry outage, no renewals (producers "
             "created in or after the outage never mediate)",
             config, slo});
  }

  // Servlet-container restarts at steady state: the producer container dies
  // for 10 s (tuple stores, worker threads and attachments lost), then the
  // consumer container 30 s later. With recovery, producers re-declare on
  // failed inserts and the subscriber re-creates its query on failed polls.
  {
    RgmaConfig config = scenarios::rgma_single(200);
    config.faults
        .producer_servlet_restart(units::seconds(15), 0, units::seconds(10))
        .consumer_servlet_restart(units::seconds(45), 0, units::seconds(10));
    config.registry_ttl = units::seconds(60);
    config.fleet.recovery = true;
    // Calibrated for runs of >= 5 virtual minutes: recovery re-creates the
    // query within ~10 s of the consumer window (TTR burn 0.23) while the
    // baseline's TTR clamps at the horizon (burn ~7, loss > 50%). At
    // 1-minute smoke runs the poll-driven detection has not fired yet and
    // *both* twins miss the TTR bound — expected, not a regression.
    obs::SloSpec slo;
    slo.max_loss_pct(50.0).max_ttr_ms(45000.0);
    reg.add({"chaos/rgma/servlet_restart",
             "Chaos: producer then consumer servlet containers restart (10 s "
             "outages); clients re-declare / re-create",
             config, slo});
    config.fleet.recovery = false;
    reg.add({"chaos/rgma/servlet_restart_norecovery",
             "Chaos baseline: same servlet restarts, no client recovery "
             "(producers and the query stay dead)",
             config, slo});
  }

  // Half-open registry: the container wedges (accepts requests, burns
  // servlet time, never answers) instead of dying cleanly. Without a
  // request timeout the renewal heartbeats would hang forever; with one
  // they fail fast (408) and retry on the next beat, so the directory
  // heals as soon as the container un-wedges.
  {
    RgmaConfig config = scenarios::rgma_single(400);
    config.faults.registry_half_open(units::seconds(60), units::seconds(120),
                                     FaultAnchor::kRunStart);
    config.registry_ttl = units::seconds(60);
    config.request_timeout = units::seconds(2);
    config.fleet.recovery = true;
    obs::SloSpec slo;
    slo.max_loss_pct(30.0);
    reg.add({"chaos/rgma/registry_halfopen/400",
             "Chaos: registry wedges half-open 60-180 s into the ramp "
             "(accepts, never answers); 2 s client time-outs rescue the "
             "renewal heartbeats",
             config, slo});
  }

  // --- Replay twins ---------------------------------------------------------
  //
  // The reconnect-backfill study: each twin re-runs a recovery scenario
  // with the replication layer on (tiered retention + gap replay), and is
  // gated on loss *after* recovery going to ~0 — recovery alone only stops
  // the bleeding, replay wins the fault-window traffic back.

  // Single-broker crash with backfill. The restarted broker's retention
  // restarts empty (history dies with the process), but the sequence
  // journal survives, so reconnecting publishers flush their backlogs into
  // fresh retention and the subscriber's backfill covers everything that
  // resumed before its own resubscribe landed.
  {
    NaradaConfig config = scenarios::narada_single(800);
    config.faults.broker_crash(units::seconds(15), 0, units::seconds(10));
    config.fleet.recovery = true;
    config.replay.enabled = true;
    obs::SloSpec slo;
    slo.max_loss_after_recovery_pct(0.5)
        .max_ttr_ms(30000.0)
        .min_availability_pct(55.0);
    reg.add({"chaos/narada/broker_crash_replay/800",
             "Replay twin: broker crash + reconnect backfill; loss after "
             "recovery gated at 0.5%",
             config, slo});
  }

  // DBN broker crash with fail-over: clients of the dead broker re-home to
  // a surviving broker after two failed reconnect attempts and backfill
  // from its replicated retention — the stream never waits for the restart.
  {
    NaradaConfig config = scenarios::narada_dbn(800);
    config.faults.broker_crash(units::seconds(15), 2, units::seconds(10));
    config.fleet.recovery = true;
    config.replay.enabled = true;
    obs::SloSpec slo;
    slo.max_loss_after_recovery_pct(0.5).max_ttr_ms(30000.0);
    reg.add({"chaos/narada/dbn_broker_crash_replay",
             "Replay twin: one of 4 DBN brokers crashes; its clients "
             "re-home to survivors and backfill from replicated retention",
             config, slo});
  }

  // DBN partition with peer repair: at heal, every broker pulls the frames
  // it missed from its peers, then the (settled) client backfills find
  // complete retention wherever they land.
  {
    NaradaConfig config = scenarios::narada_dbn(800);
    config.faults.dbn_partition(units::seconds(15), units::seconds(10));
    config.fleet.recovery = true;
    config.replay.enabled = true;
    obs::SloSpec slo;
    slo.max_loss_after_recovery_pct(0.5).max_ttr_ms(30000.0);
    reg.add({"chaos/narada/dbn_partition_replay",
             "Replay twin: 10 s pub/sub partition; peer backfill repairs "
             "broker retention at heal, clients replay their gaps",
             config, slo});
  }

  // Subscriber NIC flap with gap replay: the connection survives, so no
  // reconnect fires — the per-origin sequence chain notices the hole on
  // the first post-flap delivery and pulls the window from broker
  // retention.
  {
    NaradaConfig config = scenarios::narada_single(400);
    config.faults.nic_down(units::seconds(15), 1, units::seconds(5))
        .nic_down(units::seconds(40), 1, units::seconds(5));
    config.fleet.recovery = true;
    config.replay.enabled = true;
    obs::SloSpec slo;
    slo.max_loss_after_recovery_pct(0.5).max_ttr_ms(20000.0);
    reg.add({"chaos/narada/nic_flap_replay/400",
             "Replay twin: subscriber NIC flaps 2x5 s; sequence-gap "
             "detection replays the windows from broker retention",
             config, slo});
  }

  // MQTT flapping link with a persistent session: a short keep-alive makes
  // the broker park the dead subscriber quickly; QoS 1 traffic queues in
  // the (retention-bounded) offline queue and drains on resume.
  {
    MqttConfig config = scenarios::mqtt_single(800, /*qos=*/1);
    config.fleet.recovery = true;
    config.clean_session = false;
    config.keep_alive = units::seconds(2);
    config.replay.enabled = true;
    config.faults.nic_down(units::seconds(15), 1, units::seconds(8))
        .nic_down(units::seconds(45), 1, units::seconds(8))
        .nic_down(units::seconds(75), 1, units::seconds(8));
    obs::SloSpec slo;
    slo.max_loss_after_recovery_pct(0.5).max_ttr_ms(20000.0);
    reg.add({"chaos/mqtt/flapping_link_replay/800",
             "Replay twin: uplink flaps 3x8 s against a persistent session; "
             "the offline queue holds the windows and drains on resume",
             config, slo});
  }

  // R-GMA consumer-container restart with history backfill: the re-created
  // continuous query is preceded by a one-time history query against
  // producer retention, winning back the poll gap (producer stores
  // survived, only the consumer side died).
  {
    RgmaConfig config = scenarios::rgma_single(200);
    config.faults.consumer_servlet_restart(units::seconds(15), 0,
                                           units::seconds(10));
    config.registry_ttl = units::seconds(60);
    config.fleet.recovery = true;
    config.replay.enabled = true;
    obs::SloSpec slo;
    slo.max_loss_after_recovery_pct(0.5);
    reg.add({"chaos/rgma/servlet_restart_replay",
             "Replay twin: consumer container restarts (10 s); the re-made "
             "query backfills from producer history retention",
             config, slo});
  }
}

}  // namespace gridmon::core
