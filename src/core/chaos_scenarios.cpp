// The chaos/* scenario family: deterministic fault-injection campaigns.
//
// Each scenario pairs a classic experiment configuration with a FaultPlan
// and (usually) the recovery policies, plus a `_norecovery` twin where the
// comparison is the point: the availability columns (downtime, TTR,
// in-window vs post-window loss) only mean something against the baseline
// that never reconnects. Fault times are fixed virtual offsets — chaos runs
// are exactly as deterministic as the fault-free ones.
#include "core/registry.hpp"
#include "core/scenarios.hpp"

namespace gridmon::core {

void register_chaos_scenarios(ScenarioRegistry& reg) {
  // --- Narada ---------------------------------------------------------------

  // Broker crash at steady state, 10 s dwell, then restart. With recovery,
  // clients reconnect under capped exponential backoff and resubscribe, so
  // only in-window traffic is lost; without it, every message after the
  // crash is lost and TTR pins at the run horizon.
  {
    NaradaConfig config = scenarios::narada_single(800);
    config.faults.broker_crash(units::seconds(15), 0, units::seconds(10));
    config.recovery = true;
    reg.add({"chaos/narada/broker_crash/800",
             "Chaos: single broker crashes 15 s into steady state (10 s "
             "dwell); clients reconnect + resubscribe",
             config});
    config.recovery = false;
    reg.add({"chaos/narada/broker_crash/800_norecovery",
             "Chaos baseline: same broker crash, no client recovery (all "
             "post-crash traffic lost)",
             config});
  }

  // DBN partition: the switch paths between publishing and subscribing
  // brokers are cut for 10 s (a cable cut, not a NIC fault — client links
  // stay up). Connections survive; cross-partition events are dropped.
  {
    NaradaConfig config = scenarios::narada_dbn(800);
    config.faults.dbn_partition(units::seconds(15), units::seconds(10));
    config.recovery = true;
    reg.add({"chaos/narada/dbn_partition",
             "Chaos: 4-broker DBN split pub/sub for 10 s at steady state "
             "(inter-broker paths blocked)",
             config});
  }

  // Subscriber NIC flap: the subscriber host drops off the LAN twice for
  // 5 s. TCP connections persist (a yanked cable, not a close), so loss is
  // confined to the windows — no reconnect is needed or triggered.
  {
    NaradaConfig config = scenarios::narada_single(400);
    config.faults.nic_down(units::seconds(15), 1, units::seconds(5))
        .nic_down(units::seconds(40), 1, units::seconds(5));
    reg.add({"chaos/narada/nic_flap/400",
             "Chaos: subscriber host NIC flaps twice (5 s each) at steady "
             "state; loss confined to the windows",
             config});
  }

  // UDP loss burst: LAN-wide datagram loss spikes to 30 % for 10 s on the
  // unreliable transport (a congestion event; JMS over UDP has no recovery
  // to offer, so there is no recovery twin).
  {
    NaradaConfig config = scenarios::narada_single(800);
    config.transport = narada::TransportKind::kUdp;
    config.faults.loss_burst(units::seconds(15), 0.30, units::seconds(10));
    reg.add({"chaos/narada/udp_loss_burst/800",
             "Chaos: LAN datagram loss bursts to 30% for 10 s under the UDP "
             "transport",
             config});
  }

  // --- R-GMA ----------------------------------------------------------------

  // Registry outage during the creation ramp (anchored at run start: the
  // directory only matters while registrations and mediation happen). Soft
  // state is wiped; with recovery, renewal heartbeats re-register producers
  // and consumers and mediation re-forms the attachments — GMA's data-path/
  // directory separation means streaming itself never stops.
  {
    RgmaConfig config = scenarios::rgma_single(400);
    config.faults.registry_restart(units::seconds(60), units::seconds(120),
                                   FaultAnchor::kRunStart);
    config.registry_ttl = units::seconds(60);
    config.recovery = true;
    reg.add({"chaos/rgma/registry_outage/400",
             "Chaos: registry container down 60-180 s into the ramp (state "
             "wiped, TTL 60 s); renewals re-register",
             config});
    config.recovery = false;
    reg.add({"chaos/rgma/registry_outage/400_norecovery",
             "Chaos baseline: same registry outage, no renewals (producers "
             "created in or after the outage never mediate)",
             config});
  }

  // Servlet-container restarts at steady state: the producer container dies
  // for 10 s (tuple stores, worker threads and attachments lost), then the
  // consumer container 30 s later. With recovery, producers re-declare on
  // failed inserts and the subscriber re-creates its query on failed polls.
  {
    RgmaConfig config = scenarios::rgma_single(200);
    config.faults
        .producer_servlet_restart(units::seconds(15), 0, units::seconds(10))
        .consumer_servlet_restart(units::seconds(45), 0, units::seconds(10));
    config.registry_ttl = units::seconds(60);
    config.recovery = true;
    reg.add({"chaos/rgma/servlet_restart",
             "Chaos: producer then consumer servlet containers restart (10 s "
             "outages); clients re-declare / re-create",
             config});
    config.recovery = false;
    reg.add({"chaos/rgma/servlet_restart_norecovery",
             "Chaos baseline: same servlet restarts, no client recovery "
             "(producers and the query stay dead)",
             config});
  }
}

}  // namespace gridmon::core
