// The two ablations whose topologies are not plain Narada/R-GMA campaign
// configs, packaged as registry scenarios so the CLI and benches address
// them by id like everything else:
//
//  - ablation/aggregation/<batch>: sender-side message aggregation (the IBM
//    RMM technique from the paper's related work, §IV). One high-rate
//    gateway publisher (1,000 msg/s) through a single broker; the batch
//    factor amortises per-message broker overhead at the price of batching
//    delay. Broker CPU shows up as servers.cpu_idle_pct.
//  - ablation/webservices/{binary,soap}: the Web Services data path the
//    paper rejected (§III.D) — the same 150 msg/s stream over binary JMS
//    and through SOAP proxies; XML inflation shows up in wire_bytes.
//
// Both are fixed-window microbenchmarks (120 s of virtual publishing), so
// they ignore the campaign duration; seed is honoured.
#include "cluster/hydra.hpp"
#include "core/payloads.hpp"
#include "core/registry.hpp"
#include "gma/webservices.hpp"
#include "narada/client.hpp"
#include "narada/dbn.hpp"

namespace gridmon::core {
namespace {

constexpr SimTime kRunFor = units::seconds(120);

Results run_aggregation(int batch_size, const RunContext& context) {
  cluster::HydraConfig hydra_config;
  hydra_config.seed = context.seed;
  cluster::Hydra hydra(hydra_config);

  narada::DbnConfig dbn_config;
  dbn_config.broker_hosts = {0};
  narada::Dbn dbn(hydra, dbn_config);
  dbn.start();

  Results results;
  auto subscriber = narada::NaradaClient::create(
      hydra.host(1), hydra.lan(), hydra.streams(), dbn.broker_endpoint(0),
      net::Endpoint{1, 9000}, narada::TransportKind::kTcp);
  subscriber->connect([&](bool ok) {
    if (!ok) return;
    subscriber->subscribe("powergrid/monitoring", "",
                          jms::AcknowledgeMode::kAutoAcknowledge,
                          [&](const jms::MessagePtr& message, SimTime) {
                            results.metrics.record(
                                message->timestamp, message->timestamp,
                                hydra.sim().now(), hydra.sim().now());
                          });
  });

  auto publisher = narada::NaradaClient::create(
      hydra.host(2), hydra.lan(), hydra.streams(), dbn.broker_endpoint(0),
      net::Endpoint{2, 9001}, narada::TransportKind::kTcp);
  publisher->enable_aggregation(batch_size, units::milliseconds(20));
  auto rng = hydra.sim().rng_stream("aggregation");

  constexpr SimTime kPeriod = units::microseconds(1000);  // 1,000 msg/s
  publisher->connect([&](bool ok) {
    if (!ok) return;
    // A gateway concentrating many generators: one message per millisecond.
    auto* timer = new sim::PeriodicTimer(
        hydra.sim(), hydra.sim().now() + kPeriod, kPeriod,
        [&, n = 0]() mutable {
          publisher->publish(core::make_generator_message(
              "powergrid/monitoring", n % 1000, n, 2, rng));
          results.metrics.count_sent();
          ++n;
        });
    hydra.sim().schedule_after(kRunFor, [timer] {
      timer->cancel();
      delete timer;
    });
  });

  const SimTime busy_before = hydra.host(0).cpu().busy_time();
  hydra.sim().run_until(kRunFor + units::seconds(10));
  const SimTime busy = hydra.host(0).cpu().busy_time() - busy_before;

  results.servers.cpu_idle_pct =
      100.0 * (1.0 - static_cast<double>(busy) / static_cast<double>(kRunFor));
  results.wire_bytes = hydra.lan().bytes_to_node(0);
  results.kernel = hydra.sim().kernel_stats();
  return results;
}

Results run_webservices(bool soap, int rate_hz, const RunContext& context) {
  cluster::HydraConfig hydra_config;
  hydra_config.seed = context.seed;
  cluster::Hydra hydra(hydra_config);
  narada::DbnConfig config;
  config.broker_hosts = {0};
  narada::Dbn dbn(hydra, config);
  dbn.start();

  Results results;
  auto sub_client = narada::NaradaClient::create(
      hydra.host(1), hydra.lan(), hydra.streams(), dbn.broker_endpoint(0),
      net::Endpoint{1, 9000}, narada::TransportKind::kTcp);
  auto pub_client = narada::NaradaClient::create(
      hydra.host(2), hydra.lan(), hydra.streams(), dbn.broker_endpoint(0),
      net::Endpoint{2, 9001}, narada::TransportKind::kTcp);
  gma::WsProxyPublisher ws_pub(hydra.host(2), pub_client);
  gma::WsProxySubscriber ws_sub(hydra.host(1), sub_client);

  auto listener = [&](const jms::MessagePtr& msg, SimTime) {
    results.metrics.record(msg->timestamp, msg->timestamp, hydra.sim().now(),
                           hydra.sim().now());
  };
  sub_client->connect([&](bool) {
    if (soap) {
      ws_sub.subscribe("t", "", listener);
    } else {
      sub_client->subscribe("t", "", jms::AcknowledgeMode::kAutoAcknowledge,
                            listener);
    }
  });

  auto rng = hydra.sim().rng_stream("ws");
  const SimTime period = units::seconds(1) / rate_hz;
  pub_client->connect([&](bool) {
    auto* timer = new sim::PeriodicTimer(
        hydra.sim(), hydra.sim().now() + period, period,
        [&, n = 0]() mutable {
          jms::Message msg =
              core::make_generator_message("t", n % 100, n, 2, rng);
          if (soap) {
            ws_pub.publish(std::move(msg));
          } else {
            pub_client->publish(std::move(msg));
          }
          results.metrics.count_sent();
          ++n;
        });
    hydra.sim().schedule_after(kRunFor, [timer] {
      timer->cancel();
      delete timer;
    });
  });

  hydra.sim().run_until(kRunFor + units::seconds(10));
  results.wire_bytes = hydra.lan().bytes_to_node(0);
  results.kernel = hydra.sim().kernel_stats();
  return results;
}

}  // namespace

void register_ablation_scenarios(ScenarioRegistry& registry) {
  for (int batch : {1, 2, 4, 8, 16, 32}) {
    registry.add(
        {"ablation/aggregation/" + std::to_string(batch),
         "Ablation (SIV related work): sender-side aggregation, batch " +
             std::to_string(batch) + ", one 1,000 msg/s gateway publisher",
         CustomScenario{[batch](const RunContext& context) {
           return run_aggregation(batch, context);
         }}});
  }
  registry.add({"ablation/webservices/binary",
                "Ablation (SIII.D): 150 msg/s monitoring stream over binary "
                "JMS (baseline)",
                CustomScenario{[](const RunContext& context) {
                  return run_webservices(false, 150, context);
                }}});
  registry.add({"ablation/webservices/soap",
                "Ablation (SIII.D): the same stream SOAP-encoded through "
                "Web-Services proxies",
                CustomScenario{[](const RunContext& context) {
                  return run_webservices(true, 150, context);
                }}});
}

}  // namespace gridmon::core
