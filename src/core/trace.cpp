#include "core/trace.hpp"

#include <cstdio>
#include <sstream>

namespace gridmon::core {

std::string TraceWriter::render_csv() const {
  std::ostringstream out;
  out << "generator_id,sequence,before_sending_us,after_sending_us,"
         "before_receiving_us,after_receiving_us,rtt_ms\n";
  out.setf(std::ios::fixed);
  out.precision(3);
  for (const auto& r : records_) {
    out << r.generator_id << ',' << r.sequence << ','
        << r.before_sending / 1000 << ',' << r.after_sending / 1000 << ','
        << r.before_receiving / 1000 << ',' << r.after_receiving / 1000 << ','
        << r.rtt_ms() << '\n';
  }
  return out.str();
}

bool TraceWriter::write_csv(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string csv = render_csv();
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), file) == csv.size();
  std::fclose(file);
  return ok;
}

}  // namespace gridmon::core
