#include "core/metrics.hpp"

namespace gridmon::core {

void Metrics::record(SimTime before_sending, SimTime after_sending,
                     SimTime before_receiving, SimTime after_receiving) {
  const double rtt = units::to_millis(after_receiving - before_sending);
  rtt_ms_.add(rtt);
  if (deadline_ > 0 && after_receiving - before_sending > deadline_) {
    ++delivered_late_;
  }
  if (after_sending == before_sending) {
    // Sentinel: the caller never observed the publish-call return (e.g.
    // campaign pooling re-records bare RTTs). Folding PRT=0 into the mean
    // would silently skew the decomposition — count it separately instead.
    ++prt_unknown_;
  } else {
    prt_ms_.add(units::to_millis(after_sending - before_sending));
  }
  pt_ms_.add(units::to_millis(before_receiving - after_sending));
  srt_ms_.add(units::to_millis(after_receiving - before_receiving));
}

double Metrics::loss_rate() const {
  if (sent_ == 0) return 0.0;
  const std::uint64_t recv = received();
  if (recv >= sent_) return 0.0;
  return static_cast<double>(sent_ - recv) / static_cast<double>(sent_);
}

}  // namespace gridmon::core
