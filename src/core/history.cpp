#include "core/history.hpp"

#include <utility>

namespace gridmon::core {

HistoryBuffer::HistoryBuffer(HistoryBuffer&& other) noexcept
    : config_(other.config_),
      raw_(std::move(other.raw_)),
      tiered_(std::move(other.tiered_)),
      next_seq_(other.next_seq_),
      bytes_(other.bytes_),
      dropped_(other.dropped_) {
  other.raw_.clear();
  other.tiered_.clear();
  other.bytes_ = 0;
}

HistoryBuffer& HistoryBuffer::operator=(HistoryBuffer&& other) noexcept {
  if (this == &other) return *this;
  release_accounting();
  config_ = other.config_;
  raw_ = std::move(other.raw_);
  tiered_ = std::move(other.tiered_);
  next_seq_ = other.next_seq_;
  bytes_ = other.bytes_;
  dropped_ = other.dropped_;
  other.raw_.clear();
  other.tiered_.clear();
  other.bytes_ = 0;
  return *this;
}

HistoryBuffer::~HistoryBuffer() { release_accounting(); }

void HistoryBuffer::release_accounting() {
  if (bytes_ != 0) obs::mem_sub(obs::MemCategory::kHistory, bytes_);
  bytes_ = 0;
}

std::uint64_t HistoryBuffer::append(std::any payload, std::int64_t bytes,
                                    SimTime now) {
  const std::uint64_t seq = next_seq_++;
  raw_.push_back(Stored{std::move(payload), seq, bytes, now});
  bytes_ += bytes;
  obs::mem_add(obs::MemCategory::kHistory, bytes);
  prune(now);
  return seq;
}

bool HistoryBuffer::append_at(std::uint64_t seq, std::any payload,
                              std::int64_t bytes, SimTime now) {
  if (seq < next_seq_) return false;  // duplicate or stale replica traffic
  next_seq_ = seq + 1;
  raw_.push_back(Stored{std::move(payload), seq, bytes, now});
  bytes_ += bytes;
  obs::mem_add(obs::MemCategory::kHistory, bytes);
  prune(now);
  return true;
}

void HistoryBuffer::drop_front(std::deque<Stored>& tier, std::int64_t& freed) {
  freed += tier.front().bytes;
  bytes_ -= tier.front().bytes;
  ++dropped_;
  tier.pop_front();
}

std::int64_t HistoryBuffer::prune(SimTime now) {
  std::int64_t freed = 0;

  // Demote raw entries past the raw window: every K-th sequence survives
  // into the downsampled tier, the rest are dropped.
  while (!raw_.empty() && now - raw_.front().at > config_.raw_window) {
    const int keep = config_.downsample_keep_every;
    if (keep <= 1 || raw_.front().seq % static_cast<std::uint64_t>(keep) == 0) {
      tiered_.push_back(std::move(raw_.front()));
      raw_.pop_front();
    } else {
      drop_front(raw_, freed);
    }
  }

  // Evict downsampled entries past the total retention window.
  while (!tiered_.empty() &&
         now - tiered_.front().at > config_.downsampled_window) {
    drop_front(tiered_, freed);
  }

  // Enforce the hard bounds oldest-first (downsampled tier first — it holds
  // the oldest entries).
  const auto over_bounds = [this] {
    if (config_.max_bytes > 0 && bytes_ > config_.max_bytes) return true;
    if (config_.max_entries > 0 &&
        static_cast<std::int64_t>(size()) > config_.max_entries) {
      return true;
    }
    return false;
  };
  while (over_bounds() && !tiered_.empty()) drop_front(tiered_, freed);
  while (over_bounds() && !raw_.empty()) drop_front(raw_, freed);

  if (freed != 0) obs::mem_sub(obs::MemCategory::kHistory, freed);
  return freed;
}

std::uint64_t HistoryBuffer::first_sequence() const {
  if (!tiered_.empty()) return tiered_.front().seq;
  if (!raw_.empty()) return raw_.front().seq;
  return 0;
}

ReplayStats HistoryBuffer::replay_since(std::uint64_t cursor,
                                        const ReplayVisitor& fn) const {
  ReplayStats stats;
  stats.first_available = first_sequence();
  // A cursor behind the oldest retained entry means part of the gap is
  // gone; a cursor *ahead* of everything we ever assigned means the source
  // restarted (wrapped sequence) — serve everything retained in that case.
  if (cursor >= next_seq_) cursor = 0;
  if (stats.first_available != 0 && cursor + 1 < stats.first_available) {
    stats.truncated = true;
  }
  for (const auto* tier : {&tiered_, &raw_}) {
    for (const auto& entry : *tier) {
      if (entry.seq <= cursor) continue;
      fn(entry.seq, entry.payload, entry.bytes);
      ++stats.served;
      stats.served_bytes += entry.bytes;
    }
  }
  return stats;
}

}  // namespace gridmon::core
