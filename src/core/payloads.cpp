#include "core/payloads.hpp"

namespace gridmon::core {

jms::Message make_generator_message(const std::string& topic,
                                    std::int64_t generator_id,
                                    std::int64_t sequence, int origin_node,
                                    util::Rng& rng, std::int64_t pad_bytes) {
  jms::Message msg = jms::make_map_message(topic, {});

  // Selector-visible properties (the paper's subscriber uses "id<10000").
  msg.set_property("id", static_cast<std::int32_t>(generator_id));
  msg.set_property("node", static_cast<std::int32_t>(origin_node));

  // Two int values.
  msg.map_set("gen_id", static_cast<std::int32_t>(generator_id));
  msg.map_set("status", static_cast<std::int32_t>(rng.uniform_int(0, 3)));
  // Five float values.
  msg.map_set("power_kw", static_cast<float>(rng.uniform(0.0, 500.0)));
  msg.map_set("voltage", static_cast<float>(rng.uniform(220.0, 240.0)));
  msg.map_set("current", static_cast<float>(rng.uniform(0.0, 100.0)));
  msg.map_set("frequency", static_cast<float>(rng.uniform(49.8, 50.2)));
  msg.map_set("temperature", static_cast<float>(rng.uniform(15.0, 95.0)));
  // Two long values.
  msg.map_set("seq", static_cast<std::int64_t>(sequence));
  msg.map_set("uptime_s", rng.uniform_int(0, 10'000'000));
  // Three double values.
  msg.map_set("energy_kwh", rng.uniform(0.0, 1e6));
  msg.map_set("efficiency", rng.uniform(0.2, 0.98));
  msg.map_set("load_pct", rng.uniform(0.0, 100.0));
  // Four string values.
  msg.map_set("name", std::string("generator-") + std::to_string(generator_id));
  msg.map_set("site", std::string("site-") + std::to_string(generator_id % 97));
  msg.map_set("model", std::string("WT-2000-rev") +
                           std::to_string(generator_id % 7));
  msg.map_set("state", std::string(rng.chance(0.98) ? "RUNNING" : "STARTING"));

  if (pad_bytes > 0) {
    msg.map_set("pad", std::string(static_cast<std::size_t>(pad_bytes), 'x'));
  }
  return msg;
}

rgma::TableDef generator_table(const std::string& name) {
  using rgma::Column;
  using rgma::ColumnType;
  return rgma::TableDef(
      name,
      {
          Column{"id", ColumnType::kInteger, 0},
          Column{"seq", ColumnType::kInteger, 0},
          Column{"sent_us", ColumnType::kInteger, 0},
          Column{"status", ColumnType::kInteger, 0},
          Column{"power", ColumnType::kDouble, 0},
          Column{"voltage", ColumnType::kDouble, 0},
          Column{"current", ColumnType::kDouble, 0},
          Column{"frequency", ColumnType::kDouble, 0},
          Column{"temperature", ColumnType::kDouble, 0},
          Column{"pressure", ColumnType::kDouble, 0},
          Column{"efficiency", ColumnType::kDouble, 0},
          Column{"loadpct", ColumnType::kDouble, 0},
          Column{"name", ColumnType::kChar, 20},
          Column{"site", ColumnType::kChar, 20},
          Column{"model", ColumnType::kChar, 20},
          Column{"state", ColumnType::kChar, 20},
      });
}

std::vector<rgma::SqlValue> make_generator_row(std::int64_t generator_id,
                                               std::int64_t sequence,
                                               SimTime sent_at,
                                               util::Rng& rng) {
  std::vector<rgma::SqlValue> row;
  row.reserve(16);
  row.emplace_back(generator_id);
  row.emplace_back(sequence);
  row.emplace_back(static_cast<std::int64_t>(sent_at / 1000));  // µs
  row.emplace_back(rng.uniform_int(0, 3));
  row.emplace_back(rng.uniform(0.0, 500.0));
  row.emplace_back(rng.uniform(220.0, 240.0));
  row.emplace_back(rng.uniform(0.0, 100.0));
  row.emplace_back(rng.uniform(49.8, 50.2));
  row.emplace_back(rng.uniform(15.0, 95.0));
  row.emplace_back(rng.uniform(0.9, 1.1));
  row.emplace_back(rng.uniform(0.2, 0.98));
  row.emplace_back(rng.uniform(0.0, 100.0));
  row.emplace_back("gen-" + std::to_string(generator_id % 100000));
  row.emplace_back("site-" + std::to_string(generator_id % 97));
  row.emplace_back("WT-2000-r" + std::to_string(generator_id % 7));
  row.emplace_back(std::string(rng.chance(0.98) ? "RUNNING" : "STARTING"));
  return row;
}

}  // namespace gridmon::core
