// The mqtt/* scenario family: the modern pub/sub baseline next to the
// paper's two 2007 systems.
//
// The broker is a single-process event loop whose admission cost is heap
// per session, not a thread per connection — so the sweep walks straight
// through the connection counts where NaradaBrokering hit its ~4000-thread
// OOM wall. The family covers the scaling sweep, a QoS 0/1/2 ablation
// triple, PMU-class 20 ms sampling, edge-gateway fan-in batching, and a
// mixed-QoS fleet; the chaos twins live with the rest of the chaos/*
// family (chaos_scenarios.cpp).
#include <string>

#include "core/registry.hpp"
#include "core/scenarios.hpp"

namespace gridmon::core {

namespace scenarios {

MqttConfig mqtt_single(int connections, int qos, std::uint64_t seed) {
  MqttConfig config;
  config.fleet.generators = connections;
  config.qos = qos;
  config.seed = seed;
  return config;
}

}  // namespace scenarios

void register_mqtt_scenarios(ScenarioRegistry& reg) {
  // Scaling sweep at QoS 0 — the axis shared with narada/single and
  // rgma/single. 4000 is the point where the threaded broker fell over.
  for (int n : {400, 800, 2000, 4000}) {
    reg.add({"mqtt/single/" + std::to_string(n),
             "MQTT baseline: single broker, " + std::to_string(n) +
                 " QoS 0 publishers, one '#' subscriber",
             scenarios::mqtt_single(n)});
  }

  // QoS tier ablation at the paper's 800-connection comparison point:
  // what at-least-once and exactly-once cost in RTT and wire traffic.
  for (int q : {0, 1, 2}) {
    reg.add({"mqtt/qos" + std::to_string(q) + "/800",
             "Ablation: 800 publishers at QoS " + std::to_string(q) +
                 (q == 0 ? " (fire-and-forget)"
                         : q == 1 ? " (PUBACK, at-least-once)"
                                  : " (PUBREC/PUBREL/PUBCOMP, exactly-once)"),
             scenarios::mqtt_single(800, q)});
  }

  // PMU-class high-rate sampling: 20 ms periods, a 500x faster cadence
  // than the paper's 10 s SCADA scans (phasor measurement framing).
  {
    MqttConfig config = scenarios::mqtt_single(100);
    config.fleet.publish_period = units::milliseconds(20);
    reg.add({"mqtt/highrate/100",
             "High-rate sampling: 100 publishers at 20 ms period (PMU-class "
             "cadence, QoS 0)",
             config});
  }

  // Edge-gateway fan-in: 40 gateways each fronting 20 sensors, publishing
  // one aggregated sample block per period — the same 800-sensor coverage
  // as mqtt/single/800 at 1/20th the packet rate.
  {
    MqttConfig config = scenarios::mqtt_single(40, 1);
    config.gateway_batch = 20;
    reg.add({"mqtt/gateway/40x20",
             "Edge gateways: 40 clients x 20 aggregated sensors each "
             "(800-sensor coverage, QoS 1)",
             config});
  }

  // Mixed-QoS fleet: generator g publishes at QoS g % 3 — one broker
  // serving all three service tiers at once (subscriber granted QoS 2).
  {
    MqttConfig config = scenarios::mqtt_single(900);
    config.mixed_qos = true;
    reg.add({"mqtt/mixed/900",
             "Mixed fleet: 900 publishers striped across QoS 0/1/2 on one "
             "broker",
             config});
  }
}

}  // namespace gridmon::core
