// Report helpers: format experiment results as the paper's tables and
// figure series.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/table.hpp"

namespace gridmon::core {

/// The percentile axis the paper's figures use.
inline const std::vector<double>& paper_percentiles() {
  static const std::vector<double> kPercentiles = {95, 96, 97, 98, 99, 100};
  return kPercentiles;
}

/// One "RTT / STDDEV" row (Figs 3, 7, 11).
[[nodiscard]] std::vector<double> rtt_row(const Results& results);

/// One percentile series row (Figs 4, 8, 9, 10, 12, 14), in ms.
[[nodiscard]] std::vector<double> percentile_row(const Results& results);

/// One "CPU idle / memory(MB)" row (Figs 6, 13).
[[nodiscard]] std::vector<double> resource_row(const Results& results);

/// Render the RTT decomposition (Fig 15) as cumulative phase timestamps
/// relative to before_sending: {before_sending, after_sending,
/// before_receiving, after_receiving} means, in ms.
[[nodiscard]] std::vector<double> decomposition_row(const Results& results);

/// Table III-style qualitative grade from measured numbers.
[[nodiscard]] std::string grade_realtime(const Results& results);

// --- SLO adapter -------------------------------------------------------------

/// Pack a run's metrics + availability counters into the plain-number
/// input obs::evaluate_slo consumes. `duration` is the campaign's virtual
/// duration (the availability denominator — deterministic and comparable
/// across scenarios, unlike the ramp-dependent horizon).
[[nodiscard]] obs::SloInput slo_input(const Results& results,
                                      SimTime duration);

/// Evaluate a spec against a run (or pooled) Results.
[[nodiscard]] obs::SloReport evaluate_slo(const obs::SloSpec& spec,
                                          const Results& results,
                                          SimTime duration);

// --- Cross-run regression diffing --------------------------------------------
//
// `gridmon_cli diff baseline.json candidate.json` aligns two campaign JSON
// documents by (scenario, seed) and reports per-metric deltas with a
// verdict. Deterministic metrics (loss, latency, footprint, SLO burn) are
// judged against `rel_tolerance_pct`; wall-clock metrics are advisory only
// (they vary run to run) and use the looser `timing_tolerance_pct`.
// Documents with mismatched schema_version are refused outright.

struct DiffOptions {
  /// Relative noise threshold for deterministic metrics, percent. Deltas
  /// within it are reported but not verdict-bearing.
  double rel_tolerance_pct = 2.0;
  /// Advisory threshold for wall-clock metrics (wall_seconds,
  /// events_per_sec), percent.
  double timing_tolerance_pct = 10.0;
};

/// One compared metric of one aligned run.
struct MetricDelta {
  std::string name;
  double baseline = 0.0;
  double candidate = 0.0;
  /// Relative change, percent; candidate-only magnitude when baseline is 0.
  double delta_pct = 0.0;
  bool present = false;     ///< both documents carried the metric
  bool advisory = false;    ///< wall-clock metric: never verdict-bearing
  bool regression = false;  ///< worsened past tolerance, in the bad direction
  bool improvement = false;
};

/// One (scenario, seed) pair aligned across the two documents.
struct RunDiff {
  std::string scenario_id;
  std::uint64_t seed = 0;
  /// Backend name (schema v2 `system` column); empty when the documents
  /// predate it. "baseline -> candidate" note when the two disagree.
  std::string system;
  std::vector<MetricDelta> metrics;
  /// "pass -> FAIL" style note when the SLO verdict flipped; empty else.
  std::string slo_note;
  bool regression = false;
};

struct CampaignDiff {
  /// False when the documents could not be compared (parse failure or
  /// schema_version mismatch); `error` says why and nothing else is valid.
  bool comparable = false;
  std::string error;
  int baseline_schema = -1;
  int candidate_schema = -1;
  std::vector<RunDiff> runs;
  std::vector<std::string> only_baseline;   ///< runs missing from candidate
  std::vector<std::string> only_candidate;  ///< runs new in candidate
  bool regression = false;  ///< any aligned run regressed

  /// Human-readable terminal table.
  [[nodiscard]] std::string table() const;
  /// Machine-readable verdict document.
  [[nodiscard]] std::string json() const;
};

/// Diff two campaign JSON documents (the strings `Campaign::json()`
/// produces, with or without timing fields).
[[nodiscard]] CampaignDiff diff_campaigns(std::string_view baseline_json,
                                          std::string_view candidate_json,
                                          const DiffOptions& options = {});

}  // namespace gridmon::core
