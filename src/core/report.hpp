// Report helpers: format experiment results as the paper's tables and
// figure series.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/table.hpp"

namespace gridmon::core {

/// The percentile axis the paper's figures use.
inline const std::vector<double>& paper_percentiles() {
  static const std::vector<double> kPercentiles = {95, 96, 97, 98, 99, 100};
  return kPercentiles;
}

/// One "RTT / STDDEV" row (Figs 3, 7, 11).
[[nodiscard]] std::vector<double> rtt_row(const Results& results);

/// One percentile series row (Figs 4, 8, 9, 10, 12, 14), in ms.
[[nodiscard]] std::vector<double> percentile_row(const Results& results);

/// One "CPU idle / memory(MB)" row (Figs 6, 13).
[[nodiscard]] std::vector<double> resource_row(const Results& results);

/// Render the RTT decomposition (Fig 15) as cumulative phase timestamps
/// relative to before_sending: {before_sending, after_sending,
/// before_receiving, after_receiving} means, in ms.
[[nodiscard]] std::vector<double> decomposition_row(const Results& results);

/// Table III-style qualitative grade from measured numbers.
[[nodiscard]] std::string grade_realtime(const Results& results);

}  // namespace gridmon::core
