// Per-message trace dumping.
//
// The paper's receiving program "dumped information of the monitoring data
// (such as sending and receiving time) into a local text file for later
// analysis" — this is that file. A TraceWriter collects one record per
// delivered message and writes a CSV suitable for replotting any of the
// paper's figures from raw data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace gridmon::core {

struct TraceRecord {
  std::int64_t generator_id = 0;
  std::int64_t sequence = 0;
  SimTime before_sending = 0;
  SimTime after_sending = 0;
  SimTime before_receiving = 0;
  SimTime after_receiving = 0;

  [[nodiscard]] double rtt_ms() const {
    return units::to_millis(after_receiving - before_sending);
  }
};

class TraceWriter {
 public:
  void add(TraceRecord record) { records_.push_back(record); }
  void reserve(std::size_t n) { records_.reserve(n); }

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }

  /// Render all records as CSV (header + one line per message, times in
  /// virtual microseconds).
  [[nodiscard]] std::string render_csv() const;

  /// Write the CSV to `path`. Returns false on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace gridmon::core
