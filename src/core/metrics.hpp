// Measurement bookkeeping for one experiment run.
//
// Implements the paper's metric definitions (§III.C):
//  - RTT: mean of per-message round-trip times (send → receive);
//  - RTT variation: standard deviation of those times;
//  - loss rate: (sent - received) / sent;
//  - percentile of RTT: quantiles of the per-message distribution;
//  - decomposition RTT = PRT + PT + SRT (publishing response time,
//    middleware process time, subscribing response time).
#pragma once

#include <cstdint>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace gridmon::core {

class Metrics {
 public:
  /// Record a completed message: all four phase timestamps. Pass
  /// after_sending == before_sending when the PRT endpoint is unknown.
  void record(SimTime before_sending, SimTime after_sending,
              SimTime before_receiving, SimTime after_receiving);

  void count_sent(std::uint64_t n = 1) { sent_ += n; }
  void count_refused_connection(std::uint64_t n = 1) {
    refused_connections_ += n;
  }

  /// Bulk accounting for aggregated deliveries (hierarchical tier): one
  /// frame covering N samples calls record() once for the oldest sample —
  /// keeping the RTT distribution honest about worst-case staleness — and
  /// counts the other N-1 here so loss/deadline rates stay per-sample.
  void count_received(std::uint64_t n) { bulk_received_ += n; }
  void count_delivered_late(std::uint64_t n) { delivered_late_ += n; }

  /// Deadline for the delivered-late count (0 disables, the default). Grid
  /// monitoring's soft real-time bound is 5 s end-to-end.
  void set_deadline(SimTime deadline) { deadline_ = deadline; }

  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t received() const {
    return rtt_ms_.count() + bulk_received_;
  }
  [[nodiscard]] std::uint64_t delivered_late() const { return delivered_late_; }
  [[nodiscard]] std::uint64_t refused_connections() const {
    return refused_connections_;
  }
  [[nodiscard]] double loss_rate() const;

  [[nodiscard]] const util::SampleSet& rtt_ms() const { return rtt_ms_; }
  [[nodiscard]] double rtt_mean_ms() const { return rtt_ms_.mean(); }
  [[nodiscard]] double rtt_stddev_ms() const { return rtt_ms_.stddev(); }
  /// Percentile in the paper's axis convention (95..100).
  [[nodiscard]] double rtt_percentile_ms(double pct) const {
    return rtt_ms_.quantile(pct / 100.0);
  }

  [[nodiscard]] const util::OnlineStats& prt_ms() const { return prt_ms_; }
  [[nodiscard]] const util::OnlineStats& pt_ms() const { return pt_ms_; }
  [[nodiscard]] const util::OnlineStats& srt_ms() const { return srt_ms_; }
  /// Messages recorded with the after_sending == before_sending sentinel
  /// (PRT endpoint unknown); excluded from the PRT stats above.
  [[nodiscard]] std::uint64_t prt_unknown() const { return prt_unknown_; }

 private:
  std::uint64_t sent_ = 0;
  std::uint64_t bulk_received_ = 0;
  std::uint64_t refused_connections_ = 0;
  SimTime deadline_ = 0;
  std::uint64_t delivered_late_ = 0;
  util::SampleSet rtt_ms_;
  std::uint64_t prt_unknown_ = 0;
  util::OnlineStats prt_ms_;
  util::OnlineStats pt_ms_;
  util::OnlineStats srt_ms_;
};

}  // namespace gridmon::core
