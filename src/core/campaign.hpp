// Parallel campaign runner.
//
// The paper's campaign is ~40 independent DES runs (scaling points x seeds
// x systems). Each run is single-threaded and bit-identical for a given
// (scenario, duration, seed); the runner fans the runs out over a worker
// pool and aggregates Results in a deterministic order (scenarios in the
// order they were added, seeds ascending within a scenario) regardless of
// the order workers finish them — so `--jobs 1` and `--jobs N` campaigns
// produce byte-identical result rows.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/registry.hpp"

namespace gridmon::core {

/// Version of the campaign JSON document layout. Bump when a field is
/// renamed/removed or its meaning changes (additions are compatible);
/// `gridmon_cli diff` refuses to compare documents with mismatched
/// versions.
///   v2: every run carries its backend name (`system` CSV column / JSON
///       key) so three-backend campaigns can be sliced without parsing
///       scenario ids.
inline constexpr int kCampaignSchemaVersion = 2;

/// One completed (scenario, seed) run.
struct RunRecord {
  std::string scenario_id;
  std::uint64_t seed = 0;
  /// Backend name from ScenarioSpec::system() ("narada", "rgma", "mqtt",
  /// or a custom scenario's own tag).
  std::string system;
  Results results;
  /// Host wall-clock seconds for this run. Excluded from csv()/json(): it
  /// is the only nondeterministic field.
  double wall_seconds = 0;

  /// Kernel throughput: simulator events executed per host wall-clock
  /// second. Derived from wall_seconds, so (like it) excluded from the
  /// csv()/json() exports; the CLI prints it instead.
  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0
               ? static_cast<double>(results.kernel.events_executed) /
                     wall_seconds
               : 0.0;
  }
};

struct CampaignOptions {
  /// Worker threads; <= 0 means one per hardware thread.
  int jobs = 1;
  /// Seeds per scenario (first_seed, first_seed+1, ...). The paper ran
  /// every test twice.
  int seeds = 2;
  std::uint64_t first_seed = 1;
  /// Virtual duration applied to every run (overrides the spec's config).
  SimTime duration = units::minutes(30);
  /// Observability options applied to every Narada/R-GMA run (off by
  /// default; custom scenarios ignore it). See obs/recorder.hpp.
  obs::Options obs;
  /// Optional progress sink, invoked after every completed run. Called
  /// from worker threads but serialised by the runner, so the callback
  /// itself needs no locking.
  std::function<void(int done, int total, const RunRecord&)> progress;
};

/// Merge per-seed repetitions the way the paper aggregates its two runs:
/// pool all RTT samples, average resources.
class Repetitions {
 public:
  void add(const Results& results) { runs_.push_back(results); }

  [[nodiscard]] const std::vector<Results>& runs() const { return runs_; }

  /// Pooled results across repetitions.
  [[nodiscard]] Results pooled() const;

  /// Decomposition means come from the first run (they are means already).
  [[nodiscard]] const Results& first() const { return runs_.front(); }

 private:
  std::vector<Results> runs_;
};

/// Ordered results of a completed campaign.
class Campaign {
 public:
  Campaign(std::vector<RunRecord> runs, double wall_seconds)
      : runs_(std::move(runs)), wall_seconds_(wall_seconds) {}

  /// Every run, ordered by (scenario insertion order, seed) — independent
  /// of completion order.
  [[nodiscard]] const std::vector<RunRecord>& runs() const { return runs_; }

  /// The records of one scenario, seeds ascending.
  [[nodiscard]] std::vector<const RunRecord*> records(
      std::string_view scenario_id) const;

  /// All seeds of one scenario merged (paper aggregation).
  [[nodiscard]] Repetitions repetitions(std::string_view scenario_id) const;
  [[nodiscard]] Results pooled(std::string_view scenario_id) const {
    return repetitions(scenario_id).pooled();
  }

  /// Total harness wall-clock for the whole campaign.
  [[nodiscard]] double wall_seconds() const { return wall_seconds_; }

  /// Machine-readable exports. One row/object per run; every field is a
  /// deterministic function of (scenario, duration, seed). The JSON export
  /// is a schema-versioned document (`{"schema_version": N, "kind":
  /// "gridmon_campaign", "runs": [...]}`) so `gridmon_cli diff` can refuse
  /// incompatible baselines. `include_timing` adds the nondeterministic
  /// wall-clock fields (per-run wall_seconds/events_per_sec) for human
  /// snapshots; determinism tests compare the default timing-free form.
  [[nodiscard]] std::string csv() const;
  [[nodiscard]] std::string json(bool include_timing = false) const;

 private:
  std::vector<RunRecord> runs_;
  double wall_seconds_ = 0;
};

/// Fans (scenario x seed) runs over a worker pool.
class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {});

  /// Queue a scenario (by value; later registry mutations cannot race).
  void add(ScenarioSpec spec);
  /// Queue a registry scenario by id; returns false if the id is unknown.
  bool add(const ScenarioRegistry& registry, std::string_view id);
  /// Queue every registry scenario matching an id prefix; returns how many.
  int add_matching(const ScenarioRegistry& registry, std::string_view prefix);

  [[nodiscard]] const std::vector<ScenarioSpec>& scenarios() const {
    return scenarios_;
  }
  [[nodiscard]] int total_runs() const {
    return static_cast<int>(scenarios_.size()) * options_.seeds;
  }

  /// Run everything. Blocks until the campaign completes.
  [[nodiscard]] Campaign run();

 private:
  CampaignOptions options_;
  std::vector<ScenarioSpec> scenarios_;
};

}  // namespace gridmon::core
