#include "core/scenarios.hpp"

namespace gridmon::core::scenarios {

std::vector<ComparisonTest> narada_comparison_tests(std::uint64_t seed) {
  using narada::TransportKind;
  std::vector<ComparisonTest> tests;

  NaradaConfig base;
  base.fleet.generators = 800;
  base.seed = seed;

  {
    ComparisonTest t{"UDP", base};
    t.config.transport = TransportKind::kUdp;
    tests.push_back(std::move(t));
  }
  {
    ComparisonTest t{"UDP CLI", base};
    t.config.transport = TransportKind::kUdp;
    t.config.ack_mode = jms::AcknowledgeMode::kClientAcknowledge;
    tests.push_back(std::move(t));
  }
  {
    ComparisonTest t{"NIO", base};
    t.config.transport = TransportKind::kNio;
    tests.push_back(std::move(t));
  }
  {
    ComparisonTest t{"TCP", base};
    t.config.transport = TransportKind::kTcp;
    tests.push_back(std::move(t));
  }
  {
    // Test 5: triple payload at one third the rate — total data unchanged.
    ComparisonTest t{"Triple", base};
    t.config.transport = TransportKind::kTcp;
    t.config.fleet.pad_bytes = 2 * 430;  // standard message ≈ 430 B on the wire
    t.config.fleet.publish_period = base.fleet.publish_period * 3;
    tests.push_back(std::move(t));
  }
  {
    // Test 6: 80 connections publishing ten times as fast.
    ComparisonTest t{"80", base};
    t.config.transport = TransportKind::kTcp;
    t.config.fleet.generators = 80;
    t.config.fleet.publish_period = base.fleet.publish_period / 10;
    tests.push_back(std::move(t));
  }
  return tests;
}

NaradaConfig narada_single(int connections, std::uint64_t seed) {
  NaradaConfig config;
  config.fleet.generators = connections;
  config.broker_hosts = {0};
  config.seed = seed;
  return config;
}

NaradaConfig narada_dbn(int connections, std::uint64_t seed) {
  NaradaConfig config;
  config.fleet.generators = connections;
  config.broker_hosts = {0, 1, 2, 3};
  config.seed = seed;
  return config;
}

RgmaConfig rgma_single(int connections, std::uint64_t seed) {
  RgmaConfig config;
  config.fleet.generators = connections;
  config.distributed = false;
  config.seed = seed;
  return config;
}

RgmaConfig rgma_distributed(int connections, std::uint64_t seed) {
  RgmaConfig config = rgma_single(connections, seed);
  config.distributed = true;
  return config;
}

RgmaConfig rgma_with_secondary(int connections, std::uint64_t seed) {
  RgmaConfig config = rgma_single(connections, seed);
  config.via_secondary_producer = true;
  return config;
}

RgmaConfig rgma_no_warmup(std::uint64_t seed) {
  RgmaConfig config = rgma_single(400, seed);
  config.fleet.warmup_min = 0;
  config.fleet.warmup_max = 0;
  return config;
}

}  // namespace gridmon::core::scenarios
