// Tiered retention for reconnect backfill replication.
//
// The paper's clients lose every message published while disconnected:
// reconnect restores the *subscription* but not the gap. A HistoryBuffer is
// the shared durability primitive all three backends use to close that gap.
// It retains recent entries in two tiers — a raw ring covering the last R
// seconds at full fidelity, and a downsampled tier covering the last D
// seconds at 1-in-K fidelity — both byte- and entry-bounded with drop-oldest
// eviction. A reconnecting client replays from its last-seen sequence; if
// retention has already evicted part of the gap the replay reports the
// truncation honestly instead of pretending the gap was filled.
//
// Entries are opaque (std::any payload + a wire-byte count): Narada stores
// FramePtr, MQTT stores parked PacketPtr packets. R-GMA reuses its existing
// TupleStore retention (the paper's own latest/history windows) and only
// shares the replay *protocol*, not this buffer.
//
// Retained bytes are memprof-accounted under MemCategory::kHistory — the
// memory price of replication is a first-class measurement, not an
// invisible freebie.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>

#include "obs/memprof.hpp"
#include "util/units.hpp"

namespace gridmon::core {

/// Per-buffer retention policy. Defaults follow the R-GMA storage windows
/// (30 s raw / 60 s total) — the paper's own retention shape.
struct RetentionConfig {
  /// Raw tier: every entry younger than this is kept at full fidelity.
  SimTime raw_window = units::seconds(30);
  /// Downsampled tier: entries between raw_window and this age keep only
  /// every `downsample_keep_every`-th sequence number.
  SimTime downsampled_window = units::seconds(60);
  /// 1-in-K sampling for the downsampled tier (1 = keep everything).
  int downsample_keep_every = 4;
  /// Hard byte bound across both tiers (0 = unbounded).
  std::int64_t max_bytes = 0;
  /// Hard entry bound across both tiers (0 = unbounded).
  std::int64_t max_entries = 0;
};

/// What a replay actually served, so callers can report partial backfill.
struct ReplayStats {
  /// Entries delivered to the visitor.
  std::int64_t served = 0;
  /// Wire bytes of the served entries.
  std::int64_t served_bytes = 0;
  /// Oldest retained sequence at replay time (0 when the buffer is empty).
  std::uint64_t first_available = 0;
  /// True when the requested cursor preceded first_available: part of the
  /// gap was already evicted and the caller must count it as lost.
  bool truncated = false;
};

/// A per-topic (or per-session) retention buffer with a gap-replay cursor.
/// Sequence numbers are assigned by append() and increase monotonically;
/// the producer stamps them onto the live stream so consumers can detect
/// gaps and ask for `replay_since(last_seen)`.
class HistoryBuffer {
 public:
  explicit HistoryBuffer(RetentionConfig config = {}) : config_(config) {}

  // Retained bytes feed the obs memory profile (mem_history); moves
  // transfer the accounting, destruction releases it (a broker crash
  // dropping its buffers subtracts their footprint automatically).
  HistoryBuffer(const HistoryBuffer&) = delete;
  HistoryBuffer& operator=(const HistoryBuffer&) = delete;
  HistoryBuffer(HistoryBuffer&& other) noexcept;
  HistoryBuffer& operator=(HistoryBuffer&& other) noexcept;
  ~HistoryBuffer();

  /// Retain `payload` (costing `bytes` on replay) appended at `now`.
  /// Returns its sequence number, starting at 1.
  std::uint64_t append(std::any payload, std::int64_t bytes, SimTime now);

  /// Retain an entry whose sequence was assigned elsewhere (a replica
  /// preserving the origin's numbering). Duplicates and stale sequences
  /// (seq <= last_sequence()) are ignored; returns true when retained.
  bool append_at(std::uint64_t seq, std::any payload, std::int64_t bytes,
                 SimTime now);

  /// Apply retention at `now`: demote raw entries past the raw window into
  /// the downsampled tier (keeping every K-th sequence), evict entries past
  /// the downsampled window, then enforce the byte/entry bounds oldest
  /// first. Returns bytes freed.
  std::int64_t prune(SimTime now);

  /// Visit retained entries with sequence > `cursor`, oldest first.
  /// The visitor receives (sequence, payload, bytes).
  using ReplayVisitor =
      std::function<void(std::uint64_t, const std::any&, std::int64_t)>;
  ReplayStats replay_since(std::uint64_t cursor, const ReplayVisitor& fn) const;

  [[nodiscard]] std::size_t size() const {
    return tiered_.size() + raw_.size();
  }
  /// Next sequence number append() would assign.
  [[nodiscard]] std::uint64_t head_sequence() const { return next_seq_; }
  /// Newest sequence ever appended (0 = never appended). Eviction does
  /// not move it — it is the replication high-watermark, not a cursor.
  [[nodiscard]] std::uint64_t last_sequence() const { return next_seq_ - 1; }
  /// Oldest retained sequence (0 when empty).
  [[nodiscard]] std::uint64_t first_sequence() const;
  [[nodiscard]] std::int64_t stored_bytes() const { return bytes_; }
  /// Entries dropped by eviction (window expiry, bounds, downsampling).
  [[nodiscard]] std::int64_t dropped() const { return dropped_; }
  [[nodiscard]] const RetentionConfig& config() const { return config_; }

 private:
  struct Stored {
    std::any payload;
    std::uint64_t seq;
    std::int64_t bytes;
    SimTime at;
  };

  void drop_front(std::deque<Stored>& tier, std::int64_t& freed);
  void release_accounting();

  RetentionConfig config_;
  // Oldest-first within each tier; every tiered_ seq < every raw_ seq.
  std::deque<Stored> raw_;
  std::deque<Stored> tiered_;
  std::uint64_t next_seq_ = 1;
  std::int64_t bytes_ = 0;
  std::int64_t dropped_ = 0;
};

}  // namespace gridmon::core
