#include "core/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

namespace gridmon::core {

Results Repetitions::pooled() const {
  Results out;
  if (runs_.empty()) return out;
  double idle = 0.0;
  std::int64_t mem = 0;
  for (const auto& run : runs_) {
    out.metrics.count_sent(run.metrics.sent());
    for (double rtt : run.metrics.rtt_ms().raw()) {
      // Re-record with zeroed phases; percentiles/mean come from here.
      out.metrics.record(0, 0, 0, static_cast<SimTime>(rtt * 1e6));
    }
    // Hierarchical runs deliver most samples in bulk (one RTT sample per
    // aggregate frame); carry the remainder so pooled loss stays honest.
    out.metrics.count_received(run.metrics.received() -
                               run.metrics.rtt_ms().count());
    out.generators = std::max(out.generators, run.generators);
    idle += run.servers.cpu_idle_pct;
    mem += run.servers.memory_bytes;
    out.refused += run.refused;
    out.events_forwarded += run.events_forwarded;
    out.wire_bytes += run.wire_bytes;
    out.completed = out.completed && run.completed;
    out.kernel.events_executed += run.kernel.events_executed;
    out.kernel.callback_heap_allocs += run.kernel.callback_heap_allocs;
    out.kernel.handles_materialised += run.kernel.handles_materialised;
    out.kernel.overflow_events += run.kernel.overflow_events;
    out.kernel.slab_chunks += run.kernel.slab_chunks;
    out.kernel.peak_queue_depth =
        std::max(out.kernel.peak_queue_depth, run.kernel.peak_queue_depth);
    out.availability.fault_events += run.availability.fault_events;
    out.availability.downtime_ms =
        std::max(out.availability.downtime_ms, run.availability.downtime_ms);
    out.availability.time_to_recover_ms =
        std::max(out.availability.time_to_recover_ms,
                 run.availability.time_to_recover_ms);
    out.availability.lost_in_window += run.availability.lost_in_window;
    out.availability.lost_post_window += run.availability.lost_post_window;
    out.availability.delivered_late += run.availability.delivered_late;
    out.availability.reconnects += run.availability.reconnects;
    out.availability.resubscribes += run.availability.resubscribes;
    out.availability.reregistrations += run.availability.reregistrations;
    out.availability.backfill_msgs += run.availability.backfill_msgs;
    out.availability.backfill_bytes += run.availability.backfill_bytes;
    // Per-window TTR pools element-wise worst case, mirroring the scalar
    // time_to_recover_ms max above.
    auto& pooled_ttr = out.availability.ttr_windows_ms;
    const auto& run_ttr = run.availability.ttr_windows_ms;
    if (pooled_ttr.size() < run_ttr.size()) {
      pooled_ttr.resize(run_ttr.size(), 0.0);
    }
    for (std::size_t w = 0; w < run_ttr.size(); ++w) {
      pooled_ttr[w] = std::max(pooled_ttr[w], run_ttr[w]);
    }
    // Memory footprint pools the worst case across seeds — the number the
    // capacity question ("does N clients fit?") actually needs.
    out.mem.enabled = out.mem.enabled || run.mem.enabled;
    for (std::size_t c = 0; c < obs::kMemCategoryCount; ++c) {
      out.mem.live[c] = std::max(out.mem.live[c], run.mem.live[c]);
      out.mem.peak[c] = std::max(out.mem.peak[c], run.mem.peak[c]);
    }
    out.mem.peak_total = std::max(out.mem.peak_total, run.mem.peak_total);
  }
  out.servers.cpu_idle_pct = idle / static_cast<double>(runs_.size());
  out.servers.memory_bytes = mem / static_cast<std::int64_t>(runs_.size());
  return out;
}

std::vector<const RunRecord*> Campaign::records(
    std::string_view scenario_id) const {
  std::vector<const RunRecord*> out;
  for (const auto& run : runs_) {
    if (run.scenario_id == scenario_id) out.push_back(&run);
  }
  return out;
}

Repetitions Campaign::repetitions(std::string_view scenario_id) const {
  Repetitions reps;
  for (const auto& run : runs_) {
    if (run.scenario_id == scenario_id) reps.add(run.results);
  }
  return reps;
}

namespace {

void append_row(std::string& out, const RunRecord& run, bool json,
                bool timing = false) {
  const auto& m = run.results.metrics;
  const auto& k = run.results.kernel;
  const auto& a = run.results.availability;
  // Loss that survived the recovery machinery: every row/message the fault
  // windows claimed and nothing (reconnect, resubscribe, backfill) won back.
  const double loss_after_recovery_pct =
      m.sent() > 0 ? 100.0 *
                         static_cast<double>(a.lost_in_window +
                                             a.lost_post_window) /
                         static_cast<double>(m.sent())
                   : 0.0;
  // Model bytes per monitored generator: the scale-sweep figure of merit.
  const std::int64_t generators = run.results.generators;
  const double bytes_per_generator =
      generators > 0 ? static_cast<double>(run.results.mem.peak_total) /
                           static_cast<double>(generators)
                     : 0.0;
  char buffer[2048];
  if (json) {
    std::snprintf(
        buffer, sizeof(buffer),
        "  {\"scenario\": \"%s\", \"seed\": %llu, \"sent\": %llu, "
        "\"received\": %llu, \"loss_pct\": %.4f, \"rtt_mean_ms\": %.3f, "
        "\"rtt_stddev_ms\": %.3f, \"rtt_p95_ms\": %.3f, \"rtt_p99_ms\": "
        "%.3f, \"rtt_p100_ms\": %.3f, \"pt_mean_ms\": %.3f, "
        "\"cpu_idle_pct\": %.1f, "
        "\"memory_mib\": %lld, \"events_forwarded\": %llu, \"wire_bytes\": "
        "%lld, \"refused\": %llu, \"completed\": %s, \"sim_events\": %llu, "
        "\"peak_queue_depth\": %llu, \"cb_heap_allocs\": %llu, "
        "\"handle_allocs\": %llu, \"faults\": %llu, \"downtime_ms\": %.1f, "
        "\"ttr_ms\": %.1f, \"lost_in_window\": %llu, \"lost_post_window\": "
        "%llu, \"late\": %llu, \"reconnects\": %llu, \"resubscribes\": %llu, "
        "\"reregistrations\": %llu",
        run.scenario_id.c_str(), static_cast<unsigned long long>(run.seed),
        static_cast<unsigned long long>(m.sent()),
        static_cast<unsigned long long>(m.received()), m.loss_rate() * 100.0,
        m.rtt_mean_ms(), m.rtt_stddev_ms(), m.rtt_percentile_ms(95),
        m.rtt_percentile_ms(99), m.rtt_percentile_ms(100), m.pt_ms().mean(),
        run.results.servers.cpu_idle_pct,
        static_cast<long long>(run.results.servers.memory_bytes / units::MiB),
        static_cast<unsigned long long>(run.results.events_forwarded),
        static_cast<long long>(run.results.wire_bytes),
        static_cast<unsigned long long>(run.results.refused),
        run.results.completed ? "true" : "false",
        static_cast<unsigned long long>(k.events_executed),
        static_cast<unsigned long long>(k.peak_queue_depth),
        static_cast<unsigned long long>(k.callback_heap_allocs),
        static_cast<unsigned long long>(k.handles_materialised),
        static_cast<unsigned long long>(a.fault_events), a.downtime_ms,
        a.time_to_recover_ms,
        static_cast<unsigned long long>(a.lost_in_window),
        static_cast<unsigned long long>(a.lost_post_window),
        static_cast<unsigned long long>(a.delivered_late),
        static_cast<unsigned long long>(a.reconnects),
        static_cast<unsigned long long>(a.resubscribes),
        static_cast<unsigned long long>(a.reregistrations));
    out += buffer;
    // Per-window TTR (satellite of the availability metrics) lives in the
    // JSON export only: the CSV column set is pinned by golden-hash tests.
    out += ", \"ttr_windows_ms\": [";
    for (std::size_t w = 0; w < a.ttr_windows_ms.size(); ++w) {
      if (w > 0) out += ", ";
      std::snprintf(buffer, sizeof(buffer), "%.1f", a.ttr_windows_ms[w]);
      out += buffer;
    }
    out += "]";
    const auto& slo = run.results.slo;
    std::snprintf(buffer, sizeof(buffer),
                  ", \"slo_pass\": %s, \"slo_worst_burn\": %.3f",
                  !slo.evaluated ? "null" : (slo.pass ? "true" : "false"),
                  slo.worst_burn);
    out += buffer;
    if (slo.evaluated && !slo.pass) {
      out += ", \"slo_worst\": \"" + slo.worst_violation() + "\"";
    }
    const auto& mem = run.results.mem;
    std::snprintf(buffer, sizeof(buffer), ", \"peak_model_bytes\": %lld",
                  static_cast<long long>(mem.peak_total));
    out += buffer;
    out += ", \"system\": \"" + run.system + "\"";
    std::snprintf(buffer, sizeof(buffer),
                  ", \"loss_after_recovery_pct\": %.4f, \"backfill_msgs\": "
                  "%llu, \"backfill_bytes\": %lld",
                  loss_after_recovery_pct,
                  static_cast<unsigned long long>(a.backfill_msgs),
                  static_cast<long long>(a.backfill_bytes));
    out += buffer;
    std::snprintf(buffer, sizeof(buffer),
                  ", \"generators\": %lld, \"bytes_per_generator\": %.1f",
                  static_cast<long long>(generators), bytes_per_generator);
    out += buffer;
    if (mem.enabled) {
      out += ", \"mem_peak_bytes\": {";
      for (std::size_t c = 0; c < obs::kMemCategoryCount; ++c) {
        if (c > 0) out += ", ";
        std::snprintf(buffer, sizeof(buffer), "\"%s\": %lld",
                      std::string(obs::to_string(
                                      static_cast<obs::MemCategory>(c)))
                          .c_str(),
                      static_cast<long long>(mem.peak[c]));
        out += buffer;
      }
      out += "}";
    }
    if (timing) {
      std::snprintf(buffer, sizeof(buffer),
                    ", \"wall_seconds\": %.3f, \"events_per_sec\": %.0f",
                    run.wall_seconds, run.events_per_sec());
      out += buffer;
    }
    out += "}";
    return;
  } else {
    std::snprintf(
        buffer, sizeof(buffer),
        "%s,%llu,%llu,%llu,%.4f,%.3f,%.3f,%.3f,%.3f,%.3f,%.1f,%lld,%llu,"
        "%lld,%llu,%d,%llu,%llu,%llu,%llu,%llu,%.1f,%.1f,%llu,%llu,%llu,"
        "%llu,%llu,%llu",
        run.scenario_id.c_str(), static_cast<unsigned long long>(run.seed),
        static_cast<unsigned long long>(m.sent()),
        static_cast<unsigned long long>(m.received()), m.loss_rate() * 100.0,
        m.rtt_mean_ms(), m.rtt_stddev_ms(), m.rtt_percentile_ms(95),
        m.rtt_percentile_ms(99), m.rtt_percentile_ms(100),
        run.results.servers.cpu_idle_pct,
        static_cast<long long>(run.results.servers.memory_bytes / units::MiB),
        static_cast<unsigned long long>(run.results.events_forwarded),
        static_cast<long long>(run.results.wire_bytes),
        static_cast<unsigned long long>(run.results.refused),
        run.results.completed ? 1 : 0,
        static_cast<unsigned long long>(k.events_executed),
        static_cast<unsigned long long>(k.peak_queue_depth),
        static_cast<unsigned long long>(k.callback_heap_allocs),
        static_cast<unsigned long long>(k.handles_materialised),
        static_cast<unsigned long long>(a.fault_events), a.downtime_ms,
        a.time_to_recover_ms,
        static_cast<unsigned long long>(a.lost_in_window),
        static_cast<unsigned long long>(a.lost_post_window),
        static_cast<unsigned long long>(a.delivered_late),
        static_cast<unsigned long long>(a.reconnects),
        static_cast<unsigned long long>(a.resubscribes),
        static_cast<unsigned long long>(a.reregistrations));
    out += buffer;
    // SLO verdict (-1 = no spec, 0 = fail, 1 = pass) and the model's
    // peak footprint ride at the end so older column prefixes stay put.
    const auto& slo = run.results.slo;
    std::snprintf(buffer, sizeof(buffer), ",%d,%.3f,%lld",
                  !slo.evaluated ? -1 : (slo.pass ? 1 : 0), slo.worst_burn,
                  static_cast<long long>(run.results.mem.peak_total));
    out += buffer;
    // Backend name (schema v2); appended last like every column addition.
    out += ',';
    out += run.system;
    // Replication columns (reconnect-backfill PR), appended after `system`
    // so every older column prefix stays put.
    std::snprintf(buffer, sizeof(buffer), ",%.4f,%lld",
                  loss_after_recovery_pct,
                  static_cast<long long>(a.backfill_bytes));
    out += buffer;
    // Fleet size (hierarchical-tier PR): flat runs report their generator
    // count too, so bytes-per-generator is derivable from any row.
    std::snprintf(buffer, sizeof(buffer), ",%lld",
                  static_cast<long long>(generators));
    out += buffer;
  }
}

}  // namespace

std::string Campaign::csv() const {
  std::string out =
      "scenario,seed,sent,received,loss_pct,rtt_mean_ms,rtt_stddev_ms,"
      "rtt_p95_ms,rtt_p99_ms,rtt_p100_ms,cpu_idle_pct,memory_mib,"
      "events_forwarded,wire_bytes,refused,completed,sim_events,"
      "peak_queue_depth,cb_heap_allocs,handle_allocs,faults,downtime_ms,"
      "ttr_ms,lost_in_window,lost_post_window,late,reconnects,resubscribes,"
      "reregistrations,slo_pass,slo_worst_burn,peak_model_bytes,system,"
      "loss_after_recovery_pct,backfill_bytes,generators\n";
  for (const auto& run : runs_) {
    append_row(out, run, /*json=*/false);
    out += '\n';
  }
  return out;
}

std::string Campaign::json(bool include_timing) const {
  char header[96];
  std::snprintf(header, sizeof(header),
                "{\"schema_version\": %d, \"kind\": \"gridmon_campaign\", "
                "\"runs\": [\n",
                kCampaignSchemaVersion);
  std::string out = header;
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    append_row(out, runs_[i], /*json=*/true, include_timing);
    out += i + 1 < runs_.size() ? ",\n" : "\n";
  }
  out += "]}\n";
  return out;
}

CampaignRunner::CampaignRunner(CampaignOptions options)
    : options_(std::move(options)) {
  if (options_.seeds < 1) options_.seeds = 1;
}

void CampaignRunner::add(ScenarioSpec spec) {
  scenarios_.push_back(std::move(spec));
}

bool CampaignRunner::add(const ScenarioRegistry& registry,
                         std::string_view id) {
  const ScenarioSpec* spec = registry.find(id);
  if (spec == nullptr) return false;
  scenarios_.push_back(*spec);
  return true;
}

int CampaignRunner::add_matching(const ScenarioRegistry& registry,
                                 std::string_view prefix) {
  int added = 0;
  for (const ScenarioSpec* spec : registry.match(prefix)) {
    scenarios_.push_back(*spec);
    ++added;
  }
  return added;
}

Campaign CampaignRunner::run() {
  const int seeds = options_.seeds;
  const int total = total_runs();
  std::vector<RunRecord> records(static_cast<std::size_t>(total));

  int jobs = options_.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  if (jobs > total) jobs = total;

  const auto campaign_begin = std::chrono::steady_clock::now();
  // Runs are claimed from a shared counter but *stored* by index, so the
  // result order is a function of the queue alone, never of scheduling.
  std::atomic<int> next{0};
  std::mutex progress_mutex;
  int done = 0;
  auto worker = [&] {
    for (int i = next.fetch_add(1); i < total; i = next.fetch_add(1)) {
      const ScenarioSpec& spec =
          scenarios_[static_cast<std::size_t>(i / seeds)];
      const std::uint64_t seed =
          options_.first_seed + static_cast<std::uint64_t>(i % seeds);
      const auto begin = std::chrono::steady_clock::now();
      Results results = run_scenario(spec, options_.duration, seed,
                                     options_.obs);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - begin;
      auto& slot = records[static_cast<std::size_t>(i)];
      slot = RunRecord{spec.id, seed, spec.system(), std::move(results),
                       elapsed.count()};
      if (options_.progress) {
        std::lock_guard lock(progress_mutex);
        options_.progress(++done, total, slot);
      }
    }
  };

  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }

  const std::chrono::duration<double> campaign_elapsed =
      std::chrono::steady_clock::now() - campaign_begin;
  return Campaign(std::move(records), campaign_elapsed.count());
}

}  // namespace gridmon::core
