// Name-addressable scenario catalogue.
//
// A ScenarioSpec gives every experiment in the study a stable string id
// ("narada/single/2000", "rgma/no_warmup", ...) and a uniform run surface:
// benches, tests, examples and the CLI all address scenarios by id and run
// them through the campaign runner (core/campaign.hpp) instead of calling
// run_narada_experiment / run_rgma_experiment with hand-built configs.
//
// Duration and seed are *campaign* knobs: `run_scenario` always overrides
// the config's own duration/seed fields, so a spec is a pure description
// and two runs of the same (id, duration, seed) triple are bit-identical.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/experiment.hpp"
#include "core/hier_experiment.hpp"

namespace gridmon::core {

/// Handed to a custom scenario body: the per-run knobs the campaign owns.
struct RunContext {
  SimTime duration = units::minutes(30);
  std::uint64_t seed = 1;
};

/// A scenario whose topology is not a plain Narada/R-GMA experiment (the
/// aggregation and Web-Services ablations build their own client graphs).
/// The body must be a pure function of the RunContext — it runs on campaign
/// worker threads.
struct CustomScenario {
  std::function<Results(const RunContext&)> run;
  /// Backend name for display/filtering. Bespoke topologies set this to
  /// the middleware they are built on ("narada", ...); plain "custom"
  /// otherwise.
  std::string backend = "custom";
};

using ScenarioConfig = std::variant<NaradaConfig, RgmaConfig, MqttConfig,
                                    HierConfig, CustomScenario>;

/// One named experiment: the unit the registry stores and the campaign
/// runner schedules.
struct ScenarioSpec {
  std::string id;           ///< unique, path-like: "narada/single/2000"
  std::string description;  ///< one line, shown by `gridmon_cli list`
  ScenarioConfig config;
  /// Service-level objectives evaluated after every run (empty = none).
  /// run_scenario fills Results::slo from this; `gridmon_cli run --slo`
  /// turns the verdicts into an exit code.
  obs::SloSpec slo = {};

  /// Backend name ("narada", "rgma", "mqtt", ...). Data-driven: read from
  /// the config type's kBackend constant (or CustomScenario::backend), so
  /// adding a backend never touches a switch here. Used by `gridmon_cli
  /// list --system` and exported as the campaign `system` column.
  [[nodiscard]] const char* system() const;
};

/// Run one scenario at an explicit duration and seed. Single-threaded and
/// deterministic; campaign parallelism is strictly *across* calls. `obs`
/// applies to Narada/R-GMA specs (custom scenarios ignore it).
[[nodiscard]] Results run_scenario(const ScenarioSpec& spec, SimTime duration,
                                   std::uint64_t seed,
                                   const obs::Options& obs = {});

/// An ordered, id-indexed set of scenario specs. Insertion-ordered listing
/// (so `gridmon_cli list` groups naturally); ids must be unique.
class ScenarioRegistry {
 public:
  /// Add a spec; throws std::invalid_argument on a duplicate id.
  void add(ScenarioSpec spec);

  [[nodiscard]] const ScenarioSpec* find(std::string_view id) const;
  /// All specs whose id starts with `prefix` (in registration order).
  /// An exact id is its own prefix, so match("rgma/no_warmup") works too.
  [[nodiscard]] std::vector<const ScenarioSpec*> match(
      std::string_view prefix) const;
  [[nodiscard]] const std::vector<ScenarioSpec>& all() const { return specs_; }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }

 private:
  std::vector<ScenarioSpec> specs_;
};

/// The process-wide catalogue: every figure, table and ablation in
/// DESIGN.md §4, keyed by the id families documented there. Built once on
/// first use and immutable afterwards, so campaign workers may read it
/// concurrently.
const ScenarioRegistry& builtin_registry();

}  // namespace gridmon::core
