#include "core/registry.hpp"

#include <stdexcept>

#include "core/report.hpp"
#include "core/scenarios.hpp"

namespace gridmon::core {

// Defined in ablation_scenarios.cpp: the two ablations with bespoke
// topologies (sender-side aggregation, Web-Services proxies).
void register_ablation_scenarios(ScenarioRegistry& registry);
// Defined in chaos_scenarios.cpp: the chaos/* fault-injection family.
void register_chaos_scenarios(ScenarioRegistry& registry);
// Defined in mqtt_scenarios.cpp: the mqtt/* modern-baseline family.
void register_mqtt_scenarios(ScenarioRegistry& registry);
// Defined in hier_scenarios.cpp: the hier/* scale-sweep family.
void register_hier_scenarios(ScenarioRegistry& registry);

const char* ScenarioSpec::system() const {
  return std::visit(
      [](const auto& config) -> const char* {
        using T = std::decay_t<decltype(config)>;
        if constexpr (std::is_same_v<T, CustomScenario>) {
          return config.backend.c_str();
        } else if constexpr (std::is_same_v<T, HierConfig>) {
          // A hier scenario's "system" is the backend its regional tier
          // publishes into — the column exists to compare middlewares.
          return to_string(config.backend);
        } else {
          return T::kBackend;
        }
      },
      config);
}

Results run_scenario(const ScenarioSpec& spec, SimTime duration,
                     std::uint64_t seed, const obs::Options& obs) {
  Results results = std::visit(
      [&](const auto& config) -> Results {
        using T = std::decay_t<decltype(config)>;
        if constexpr (std::is_same_v<T, NaradaConfig>) {
          NaradaConfig run = config;
          run.duration = duration;
          run.seed = seed;
          if (obs.enabled) run.obs = obs;
          return run_narada_experiment(run);
        } else if constexpr (std::is_same_v<T, RgmaConfig>) {
          RgmaConfig run = config;
          run.duration = duration;
          run.seed = seed;
          if (obs.enabled) run.obs = obs;
          return run_rgma_experiment(run);
        } else if constexpr (std::is_same_v<T, MqttConfig>) {
          MqttConfig run = config;
          run.duration = duration;
          run.seed = seed;
          if (obs.enabled) run.obs = obs;
          return run_mqtt_experiment(run);
        } else if constexpr (std::is_same_v<T, HierConfig>) {
          HierConfig run = config;
          run.duration = duration;
          run.seed = seed;
          if (obs.enabled) run.obs = obs;
          return run_hier_experiment(run);
        } else {
          return config.run(RunContext{duration, seed});
        }
      },
      spec.config);
  // SLO verdicts ride on every run of a spec that declares objectives;
  // evaluation is pure arithmetic over deterministic fields, so the
  // verdict columns inherit the campaign determinism contract.
  if (!spec.slo.empty()) {
    results.slo = evaluate_slo(spec.slo, results, duration);
  }
  return results;
}

void ScenarioRegistry::add(ScenarioSpec spec) {
  if (find(spec.id) != nullptr) {
    throw std::invalid_argument("duplicate scenario id: " + spec.id);
  }
  specs_.push_back(std::move(spec));
}

const ScenarioSpec* ScenarioRegistry::find(std::string_view id) const {
  for (const auto& spec : specs_) {
    if (spec.id == id) return &spec;
  }
  return nullptr;
}

std::vector<const ScenarioSpec*> ScenarioRegistry::match(
    std::string_view prefix) const {
  std::vector<const ScenarioSpec*> out;
  for (const auto& spec : specs_) {
    if (std::string_view(spec.id).substr(0, prefix.size()) == prefix) {
      out.push_back(&spec);
    }
  }
  return out;
}

namespace {

std::string slug(std::string_view label) {
  std::string out;
  for (char c : label) {
    if (c >= 'A' && c <= 'Z') {
      out += static_cast<char>(c - 'A' + 'a');
    } else if (c == ' ') {
      out += '_';
    } else {
      out += c;
    }
  }
  return out;
}

ScenarioRegistry build_catalogue() {
  ScenarioRegistry reg;

  // Table II / Fig 3 / Fig 4 / §III.E loss: the six comparison tests.
  for (const auto& test : scenarios::narada_comparison_tests()) {
    reg.add({"narada/comparison/" + slug(test.label),
             "Table II + Figs 3-4: comparison test \"" + test.label +
                 "\" (" + std::to_string(test.config.fleet.generators) +
                 " generators, single broker)",
             test.config});
  }

  // Figs 6-8 + Table III + Fig 15: single-broker scaling points (400 is
  // the Fig 15 decomposition point, 800 the Table III probe).
  for (int n : {400, 500, 800, 1000, 2000, 3000, 4000}) {
    reg.add({"narada/single/" + std::to_string(n),
             "Figs 6-8: single broker, " + std::to_string(n) +
                 " concurrent connections",
             scenarios::narada_single(n)});
  }

  // Figs 6, 7, 9 + Table III: DBN scaling points.
  for (int n : {2000, 3000, 4000, 5000}) {
    reg.add({"narada/dbn/" + std::to_string(n),
             "Figs 6, 7, 9: 4-broker DBN (broadcast deficiency), " +
                 std::to_string(n) + " connections",
             scenarios::narada_dbn(n)});
  }

  // Ablation: the predicted v1.1.3 fix — subscription-aware routing.
  for (int n : {2000, 3000, 4000}) {
    NaradaConfig config = scenarios::narada_dbn(n);
    config.subscription_aware_routing = true;
    reg.add({"narada/dbn_routed/" + std::to_string(n),
             "Ablation: DBN with subscription-aware routing (the fixed "
             "deficiency), " +
                 std::to_string(n) + " connections",
             config});
  }

  // Ablation: full transport x acknowledgement-mode matrix at 800 conns.
  for (auto transport :
       {narada::TransportKind::kTcp, narada::TransportKind::kNio,
        narada::TransportKind::kUdp}) {
    for (auto ack : {jms::AcknowledgeMode::kAutoAcknowledge,
                     jms::AcknowledgeMode::kClientAcknowledge}) {
      NaradaConfig config = scenarios::narada_single(800);
      config.transport = transport;
      config.ack_mode = ack;
      const std::string ack_name =
          ack == jms::AcknowledgeMode::kClientAcknowledge ? "client" : "auto";
      reg.add({"narada/matrix/" + slug(narada::to_string(transport)) + "/" +
                   ack_name,
               "Ablation: 800 connections over " +
                   std::string(narada::to_string(transport)) + " with " +
                   (ack == jms::AcknowledgeMode::kClientAcknowledge
                        ? "CLIENT_ACKNOWLEDGE"
                        : "AUTO_ACKNOWLEDGE"),
               config});
    }
  }

  // Ablation: persistent delivery (the knob §III.E held at non-persistent).
  {
    NaradaConfig config = scenarios::narada_single(800);
    config.delivery_mode = jms::DeliveryMode::kPersistent;
    reg.add({"narada/persistent/800",
             "Ablation: persistent JMS delivery at 800 connections "
             "(stable-storage write per event)",
             config});
  }

  // Figs 11-13 + Table III + Fig 15: R-GMA single-server scaling points.
  for (int n : {100, 200, 400, 600, 800}) {
    reg.add({"rgma/single/" + std::to_string(n),
             "Figs 11-13: Primary Producer + Consumer on one server, " +
                 std::to_string(n) + " connections",
             scenarios::rgma_single(n)});
  }

  // Figs 11, 13, 14 + Table III: distributed R-GMA.
  for (int n : {200, 400, 600, 800, 1000}) {
    reg.add({"rgma/distributed/" + std::to_string(n),
             "Figs 11, 13, 14: distributed R-GMA (2 producer + 2 consumer "
             "nodes), " +
                 std::to_string(n) + " connections",
             scenarios::rgma_distributed(n)});
  }

  // Fig 10: Primary + Secondary Producer chain.
  for (int n : {50, 100, 200}) {
    reg.add({"rgma/secondary/" + std::to_string(n),
             "Fig 10: Primary + Secondary Producer chain (30 s deliberate "
             "delay), " +
                 std::to_string(n) + " connections",
             scenarios::rgma_with_secondary(n)});
  }

  // Ablation: sweep the Secondary Producer's deliberate delay.
  for (int s : {0, 5, 15, 30}) {
    RgmaConfig config = scenarios::rgma_with_secondary(100);
    config.secondary_delay = units::seconds(s);
    reg.add({"rgma/secondary_delay/" + std::to_string(s),
             "Ablation: Secondary Producer deliberate delay at " +
                 std::to_string(s) + " s (100 connections)",
             config});
  }

  // §III.F: the no-warm-up loss experiment.
  reg.add({"rgma/no_warmup",
           "SIII.F loss: 400 producers publishing immediately (paper "
           "measured 0.17% loss)",
           scenarios::rgma_no_warmup()});

  // Ablations: HTTPS between components; legacy StreamProducer path.
  {
    RgmaConfig config = scenarios::rgma_single(200);
    config.secure = true;
    reg.add({"rgma/https/200",
             "Ablation: HTTPS between R-GMA components at 200 connections",
             config});
  }
  {
    RgmaConfig config = scenarios::rgma_single(200);
    config.legacy_stream_api = true;
    reg.add({"rgma/legacy/200",
             "Ablation: legacy StreamProducer/Archiver path ([11], "
             "SIII.F.3) at 200 connections",
             config});
  }

  register_mqtt_scenarios(reg);
  register_hier_scenarios(reg);
  register_ablation_scenarios(reg);
  register_chaos_scenarios(reg);
  return reg;
}

}  // namespace

const ScenarioRegistry& builtin_registry() {
  static const ScenarioRegistry registry = build_catalogue();
  return registry;
}

}  // namespace gridmon::core
