// The hier/* scenario family: hierarchical aggregation scale sweeps.
//
// hier/{narada,rgma,mqtt}/{10k,50k,200k,1m} sweep the generator tier far
// past the flat OOM walls (~3900 Narada connections, ~780 R-GMA producers)
// by terminating generator links on edge aggregators; only the regional
// tier holds backend clients. hier/ablation/* pins the three architectures
// against each other at 10k generators: a flat connection-per-generator
// Narada fleet (which honestly hits the wall), a pure broker tree (raw
// pass-through at both tiers), and edge aggregation (mean-reduced frames).
#include "core/registry.hpp"
#include "core/scenarios.hpp"

namespace gridmon::core {

namespace {

[[nodiscard]] HierConfig hier_preset(HierBackend backend,
                                     std::int64_t generators,
                                     std::int64_t edge_fan_in,
                                     std::int64_t regional_fan_in) {
  HierConfig config;
  config.backend = backend;
  config.topology.generators = generators;
  config.topology.edge.fan_in = edge_fan_in;
  config.topology.regional.fan_in = regional_fan_in;
  // Sub-period windows keep worst-case batching delay (one edge window +
  // one regional window + hops) inside the 5 s soft deadline.
  config.topology.edge.window = units::seconds(2);
  config.topology.regional.window = units::seconds(2);
  config.topology.edge.reduce = hier::Reduce::kMean;
  config.topology.regional.reduce = hier::Reduce::kMean;
  // Scale sweeps are the memory story: obs + memprof on by default so the
  // campaign's peak_model_bytes / bytes-per-generator columns populate.
  config.obs.enabled = true;
  config.obs.memprof = true;
  return config;
}

[[nodiscard]] const char* scale_name(std::int64_t generators) {
  switch (generators) {
    case 10'000:
      return "10k";
    case 50'000:
      return "50k";
    case 200'000:
      return "200k";
    case 1'000'000:
      return "1m";
  }
  return "custom";
}

}  // namespace

void register_hier_scenarios(ScenarioRegistry& reg) {
  struct Scale {
    std::int64_t generators;
    std::int64_t edge_fan_in;
    std::int64_t regional_fan_in;
  };
  // Shapes chosen so the regional tier stays well under the flat OOM wall
  // (20-80 backend connections) while edges keep realistic fan-ins.
  constexpr Scale kScales[] = {
      {10'000, 50, 10},    // 200 edges, 20 regionals
      {50'000, 100, 10},   // 500 edges, 50 regionals
      {200'000, 200, 20},  // 1000 edges, 50 regionals
      {1'000'000, 500, 25},  // 2000 edges, 80 regionals
  };
  constexpr HierBackend kBackends[] = {HierBackend::kNarada,
                                       HierBackend::kRgma, HierBackend::kMqtt};
  for (HierBackend backend : kBackends) {
    for (const Scale& scale : kScales) {
      reg.add({std::string("hier/") + to_string(backend) + "/" +
                   scale_name(scale.generators),
               std::string("Scale sweep: ") + scale_name(scale.generators) +
                   " generators -> edge aggregation -> " +
                   to_string(backend) + " regional publishers",
               hier_preset(backend, scale.generators, scale.edge_fan_in,
                           scale.regional_fan_in)});
    }
  }

  // Flat vs tree vs edge aggregation at 10k generators. The flat arm is a
  // genuine connection-per-generator Narada fleet: it refuses ~60% of the
  // fleet at the broker's heap wall, which is exactly the point.
  {
    NaradaConfig flat = scenarios::narada_single(10'000);
    flat.obs.enabled = true;
    flat.obs.memprof = true;
    reg.add({"hier/ablation/flat_10k",
             "Ablation: flat connection-per-generator Narada fleet at 10k "
             "(hits the heap wall)",
             flat});
  }
  {
    HierConfig tree = hier_preset(HierBackend::kNarada, 10'000, 50, 10);
    tree.topology.edge.reduce = hier::Reduce::kRaw;
    tree.topology.regional.reduce = hier::Reduce::kRaw;
    reg.add({"hier/ablation/tree_10k",
             "Ablation: pure broker tree at 10k (raw pass-through frames, "
             "no reduction)",
             tree});
  }
  reg.add({"hier/ablation/edge_10k",
           "Ablation: edge aggregation at 10k (mean-reduced frames at both "
           "tiers)",
           hier_preset(HierBackend::kNarada, 10'000, 50, 10)});
}

}  // namespace gridmon::core
