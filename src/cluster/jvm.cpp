#include "cluster/jvm.hpp"

#include "cluster/costs.hpp"

namespace gridmon::cluster {

JvmGcConfig default_gc_config() {
  JvmGcConfig cfg;
  cfg.check_period = costs::kGcCheckPeriod;
  cfg.chance_idle = costs::kGcChancePerCheckIdle;
  cfg.chance_occupancy_gain = costs::kGcChanceOccupancyGain;
  cfg.minor_pause_base = costs::kGcMinorPauseBase;
  cfg.minor_pause_per_occupancy = costs::kGcMinorPausePerOccupancy;
  cfg.full_gc_threshold = costs::kGcFullThreshold;
  cfg.full_gc_pause = costs::kGcFullPause;
  return cfg;
}

Jvm::Jvm(sim::Simulation& sim, Cpu& cpu, Heap& heap, util::Rng rng,
         JvmGcConfig config)
    : sim_(sim), cpu_(cpu), heap_(heap), rng_(rng), config_(config) {}

void Jvm::start() {
  timer_ = sim::PeriodicTimer(sim_, sim_.now() + config_.check_period,
                              config_.check_period, [this] { check(); });
}

void Jvm::stop() { timer_.cancel(); }

void Jvm::check() {
  const double occupancy = heap_.occupancy();
  const double chance =
      config_.chance_idle + config_.chance_occupancy_gain * occupancy;
  if (!rng_.chance(chance)) return;

  SimTime pause;
  if (occupancy >= config_.full_gc_threshold &&
      rng_.chance(0.25)) {
    pause = config_.full_gc_pause;
    ++full_;
  } else {
    // Minor collection: duration scales with live heap, with ±30 % jitter.
    const auto scaled = static_cast<SimTime>(
        static_cast<double>(config_.minor_pause_per_occupancy) * occupancy);
    pause = config_.minor_pause_base + scaled;
    pause = static_cast<SimTime>(static_cast<double>(pause) *
                                 rng_.uniform(0.7, 1.3));
    ++minor_;
  }
  total_pause_ += pause;
  cpu_.stall(pause);
}

}  // namespace gridmon::cluster
