// Calibrated cost-model constants, in one place.
//
// Everything here is a *duration or size model* for the 2007 testbed
// (Pentium III 866 MHz, Sun HotSpot 1.4.2, 100 Mbps LAN). The middleware
// logic in src/narada and src/rgma is real code; these constants only decide
// how long each real step takes on the modelled hardware. Each constant
// cites the paper observation it was calibrated against; EXPERIMENTS.md
// records the resulting fit.
#pragma once

#include "util/units.hpp"

namespace gridmon::cluster::costs {

using gridmon::units::KiB;
using gridmon::units::MiB;
using gridmon::units::microseconds;
using gridmon::units::milliseconds;
using gridmon::units::seconds;

// --- Generic JVM-on-PIII costs -------------------------------------------

/// CPU time to serialise/deserialise one byte of message payload
/// (Java object streams on an 866 MHz core: tens of MB/s).
constexpr double kSerializePerByteNs = 100.0;

/// Client-library cost to assemble and hand a message to the socket layer.
constexpr SimTime kClientSendBase = microseconds(260);

/// Client-library cost to deliver a received message to application code.
constexpr SimTime kClientReceiveBase = microseconds(220);

/// Service-time inflation per live thread (context switching, lock
/// contention, scheduler load). Calibrated against Fig 7's smooth RTT rise
/// from 500 to 3000 connections on a single broker.
constexpr double kThreadLoadFactor = 0.0012;

/// Native stack + bookkeeping per connection-serving thread (JVM 1.4
/// default stack size region). Drives the Narada OOM near 4000 connections:
/// 1 GiB budget / ~0.26 MiB per connection ≈ 3900.
constexpr std::int64_t kThreadStackBytes = 232 * KiB;
constexpr std::int64_t kConnectionBufferBytes = 34 * KiB;

/// JVM heap budgets used in the paper (-Xmx1024m for both systems).
constexpr std::int64_t kJvmHeapBudget = 1024 * MiB;

/// Baseline process footprint before any connection arrives.
constexpr std::int64_t kJvmBaselineBytes = 46 * MiB;

// --- JVM garbage collector ------------------------------------------------

/// Minor collections: mean period at idle, shrinking as allocation pressure
/// (live connections) grows; pause grows with heap occupancy. These produce
/// the 95→100 % percentile tails of Figs 4, 8, 9.
constexpr SimTime kGcCheckPeriod = milliseconds(250);
constexpr double kGcChancePerCheckIdle = 0.012;
constexpr double kGcChanceOccupancyGain = 0.10;
constexpr SimTime kGcMinorPauseBase = milliseconds(4);
constexpr SimTime kGcMinorPausePerOccupancy = milliseconds(90);
constexpr double kGcFullThreshold = 0.85;
constexpr SimTime kGcFullPause = milliseconds(320);

// --- NaradaBrokering -------------------------------------------------------

/// Broker CPU per event: selector evaluation + routing table lookup +
/// dispatch. Calibrated against Fig 3's TCP bar (~3 ms end-to-end RTT at
/// 800 connections).
constexpr SimTime kBrokerServiceBase = microseconds(520);

/// Extra broker CPU per subscriber the event fans out to.
constexpr SimTime kBrokerFanoutCost = microseconds(60);

/// JMS MapMessage wire size for the paper's payload (2 int, 5 float,
/// 2 long, 3 double, 4 string) plus JMS + Narada event headers.
constexpr std::int64_t kNaradaMessageBytes = 620;

/// JMS-over-UDP acknowledgement handling: Narada acknowledges each UDP
/// packet on a coarse bookkeeping cycle before releasing it downstream.
/// The paper calls this out as the reason UDP was "surprisingly high"
/// (~12 ms vs ~3 ms for TCP).
constexpr SimTime kUdpAckFlushPeriod = milliseconds(17);
constexpr SimTime kUdpAckProcessing = microseconds(350);

/// CLIENT_ACKNOWLEDGE adds a client-side acknowledge call per message.
constexpr SimTime kClientAckCost = microseconds(400);
constexpr SimTime kClientAckExtraLatency = milliseconds(2);

/// NIO (selector-based) server mode: events are picked up on the next
/// selector wakeup instead of synchronously by a blocked reader thread.
constexpr SimTime kNioPollGranularity = milliseconds(3);

/// Inter-broker link processing inside a broker network.
constexpr SimTime kBrokerForwardCost = microseconds(900);

/// Per-datagram loss probability of the UDP transport on the otherwise
/// quiet LAN. Calibrated against Test 1's 0.06 % message loss.
constexpr double kUdpLossProbability = 0.0003;

// --- R-GMA ------------------------------------------------------------------

/// Tomcat/servlet request handling CPU (parse HTTP, dispatch servlet).
constexpr SimTime kServletRequestCost = microseconds(900);

/// SQL INSERT handling in the Primary Producer (parse + store).
constexpr SimTime kInsertProcessingCost = microseconds(650);

/// Tuple handling cost in the Consumer (mediate, match, buffer).
constexpr SimTime kConsumerTupleCost = microseconds(500);

/// The producer streams newly inserted tuples to attached consumers on a
/// periodic cycle rather than per tuple.
constexpr SimTime kProducerStreamPeriod = milliseconds(380);

/// The consumer's continuous-query evaluation cycle: a base sweep plus a
/// per-registered-producer term. This is the dominant component of the
/// paper's "very long Process Time" (Fig 15) and its growth with the number
/// of producers yields Fig 11's RTT slope.
constexpr SimTime kConsumerCycleBase = milliseconds(240);
constexpr SimTime kConsumerCyclePerProducer = microseconds(3000);

/// Tomcat service-time inflation per live connection thread (heavier than
/// Narada's: servlet container + JDBC structures).
constexpr double kServletThreadLoadFactor = 0.0016;

/// Per-producer-connection footprint on an R-GMA server (Tomcat worker
/// thread + servlet session + mediator bookkeeping). Drives the OOM between
/// 600 and 800 connections on one server: 1 GiB / ~1.3 MiB ≈ 780.
constexpr std::int64_t kRgmaConnectionBytes = 1340 * KiB;

/// Stored tuple footprint in a memory-storage producer.
constexpr std::int64_t kTupleBytes = 620;

/// Registration/mediation latency: how long after a producer registers the
/// consumer's plan includes it. Publishing before attachment loses tuples
/// (continuous queries do not replay the past) — the paper's warm-up rule.
constexpr SimTime kMediationLatencyBase = milliseconds(700);
constexpr SimTime kMediationLatencyPerProducer = microseconds(5200);

/// R-GMA row wire size for the paper's payload (4 int, 8 double, 4 char(20))
/// wrapped in an SQL INSERT statement.
constexpr std::int64_t kRgmaInsertBytes = 540;

/// Periodic storage maintenance on a producer server (retention sweep /
/// table housekeeping in the memory-storage layer): a stop-the-world pass
/// whose length grows with the number of retained tuples. Source of the
/// multi-second RTT tail in Figs 12/14.
constexpr SimTime kStoreMaintenancePeriod = seconds(45);
constexpr SimTime kStoreMaintenancePerTuple = microseconds(400);

/// Deliberate delay in the Secondary Producer, confirmed to the authors by
/// the R-GMA developers.
constexpr SimTime kSecondaryProducerDelay = seconds(30);

/// HTTPS (secure mode): bulk-cipher CPU per byte plus per-request record
/// and MAC overhead on the PIII (§III.F: "We did not use HTTPS because of
/// the encryption overhead" — the ablation quantifies what they avoided).
constexpr double kTlsPerByteNs = 160.0;
constexpr SimTime kTlsPerRequest = microseconds(420);

// --- MQTT (modern edge broker, modelled on the same testbed) ----------------

/// Broker CPU per control packet: parse the binary fixed header + dispatch.
/// MQTT's framing is far lighter than JMS object streams — this is the
/// tier the IoT edge-broker studies measure brokers in.
constexpr SimTime kMqttPacketBase = microseconds(140);

/// Extra broker CPU per subscriber a publish fans out to (topic-filter
/// walk + per-session enqueue).
constexpr SimTime kMqttFanoutCost = microseconds(25);

/// Per-session footprint on the broker (socket buffers + session state in
/// an epoll-style event loop — no thread per connection, so MQTT's
/// admission wall sits far beyond Narada's ~4000-thread OOM).
constexpr std::int64_t kMqttSessionBytes = 16 * KiB;

/// Event-loop service-time inflation per live session (timer wheel +
/// session table pressure); much gentler than a thread-per-connection JVM.
constexpr double kMqttSessionLoadFactor = 0.00004;

/// Client-library costs: assemble/deliver a binary packet (an embedded C
/// client, not a JVM).
constexpr SimTime kMqttClientSendBase = microseconds(40);
constexpr SimTime kMqttClientReceiveBase = microseconds(35);

/// Compact binary sample an edge device publishes (timestamp + a few
/// fixed-point channel readings), vs the ~430 B JMS MapMessage / ~540 B
/// SQL INSERT the 2007 systems ship for the same reading.
constexpr std::int64_t kMqttSampleBytes = 48;

/// Persistent JMS delivery: the broker forces each event to stable storage
/// before forwarding (the paper ran non-persistent; the ablation shows the
/// price of the alternative). Disk on the testbed: ~6 ms access + stream.
constexpr SimTime kPersistWriteBase = milliseconds(6);
constexpr double kPersistPerByteNs = 90.0;

}  // namespace gridmon::cluster::costs
