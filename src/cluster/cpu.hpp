// Single-core CPU model (the testbed's Pentium III 866 MHz).
//
// Work is expressed as a CPU-time demand and executed FIFO: a job entering
// at `now` starts when the core frees up and completes `demand` later. This
// produces queueing delay under load — the dominant latency mechanism in the
// paper's scaling experiments. Stalls (JVM garbage-collection pauses) occupy
// the core like jobs do.
//
// Busy time is accumulated so a vmstat-style sampler can report CPU idle
// percentages over an interval.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/simulation.hpp"
#include "util/units.hpp"

namespace gridmon::cluster {

class Cpu {
 public:
  /// `speed` scales demands: 1.0 = the reference PIII 866 MHz core.
  explicit Cpu(sim::Simulation& sim, double speed = 1.0)
      : sim_(sim), speed_(speed) {}

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;
  Cpu(Cpu&&) = default;

  /// Enqueue `demand` of CPU time; `done` fires at completion. Returns the
  /// completion time. Small completion captures run allocation-free (the
  /// callback lives inline in the kernel's event node).
  SimTime execute(SimTime demand, sim::EventFn done);

  /// Enqueue work with no completion callback (fire-and-forget cost).
  SimTime charge(SimTime demand) { return execute(demand, {}); }

  /// Occupy the core for `duration` (GC pause, swap stall).
  void stall(SimTime duration) { execute(duration, {}); }

  /// Time already committed ahead of a job entering now.
  [[nodiscard]] SimTime backlog() const {
    const SimTime now = sim_.now();
    return free_at_ > now ? free_at_ - now : 0;
  }

  /// Total CPU time consumed since construction.
  [[nodiscard]] SimTime busy_time() const { return busy_; }

  [[nodiscard]] double speed() const { return speed_; }

 private:
  sim::Simulation& sim_;
  double speed_;
  SimTime free_at_ = 0;
  SimTime busy_ = 0;
};

}  // namespace gridmon::cluster
