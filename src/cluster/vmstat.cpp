#include "cluster/vmstat.hpp"

#include <algorithm>

namespace gridmon::cluster {

VmstatSampler::VmstatSampler(Host& host, SimTime period)
    : host_(host), period_(period) {}

void VmstatSampler::start() {
  last_busy_ = host_.cpu().busy_time();
  auto& sim = host_.sim();
  timer_ = sim::PeriodicTimer(sim, sim.now() + period_, period_,
                              [this] { sample(); });
}

void VmstatSampler::stop() { timer_.cancel(); }

void VmstatSampler::sample() {
  const SimTime busy = host_.cpu().busy_time();
  const SimTime delta_busy = busy - last_busy_;
  last_busy_ = busy;
  const double idle =
      100.0 * (1.0 - std::clamp(static_cast<double>(delta_busy) /
                                    static_cast<double>(period_),
                                0.0, 1.0));
  samples_.push_back(
      VmstatSample{host_.sim().now(), idle, host_.heap().used()});
}

double VmstatSampler::mean_cpu_idle() const {
  if (samples_.empty()) return 100.0;
  double sum = 0.0;
  for (const auto& s : samples_) sum += s.cpu_idle_pct;
  return sum / static_cast<double>(samples_.size());
}

std::int64_t VmstatSampler::memory_consumption() const {
  if (samples_.empty()) return 0;
  std::int64_t peak = samples_[0].memory_used;
  std::int64_t bottom = samples_[0].memory_used;
  for (const auto& s : samples_) {
    peak = std::max(peak, s.memory_used);
    bottom = std::min(bottom, s.memory_used);
  }
  return peak - bottom;
}

}  // namespace gridmon::cluster
