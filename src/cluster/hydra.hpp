// The Hydra testbed: 8 identical nodes on an isolated 100 Mbps switched LAN
// (Table I of the paper), assembled as one object owning the simulation
// kernel, the network fabric, and the hosts.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/host.hpp"
#include "net/lan.hpp"
#include "net/stream.hpp"
#include "sim/simulation.hpp"

namespace gridmon::cluster {

struct HydraConfig {
  int node_count = 8;
  std::uint64_t seed = 1;
  net::LanConfig lan;  ///< node_count is overridden to match
  HostConfig host;
};

class Hydra {
 public:
  explicit Hydra(HydraConfig config = {});

  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] net::Lan& lan() { return *lan_; }
  [[nodiscard]] net::StreamTransport& streams() { return *streams_; }
  [[nodiscard]] Host& host(int i) { return *hosts_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] int node_count() const { return static_cast<int>(hosts_.size()); }

  /// Human-readable testbed description (Table I reproduction).
  [[nodiscard]] std::string describe() const;

 private:
  sim::Simulation sim_;
  std::unique_ptr<net::Lan> lan_;
  std::unique_ptr<net::StreamTransport> streams_;
  std::vector<std::unique_ptr<Host>> hosts_;
};

}  // namespace gridmon::cluster
