// Process memory accounting with out-of-memory behaviour.
//
// Both scaling walls the paper reports — a single Narada broker refusing
// ~4000 connections and an R-GMA server refusing ~800 — were OutOfMemory
// errors while creating connection-serving threads. The model therefore
// charges every thread stack and connection buffer against a fixed budget
// (the -Xmx heap plus native thread stacks) and lets allocation *fail*;
// callers translate failure into connection refusal, exactly like the JVMs
// did.
#pragma once

#include <cstdint>

namespace gridmon::cluster {

class Heap {
 public:
  explicit Heap(std::int64_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// Try to allocate; returns false (and changes nothing) on exhaustion.
  [[nodiscard]] bool allocate(std::int64_t bytes) {
    if (used_ + bytes > capacity_) {
      ++failed_allocations_;
      return false;
    }
    used_ += bytes;
    if (used_ > peak_) peak_ = used_;
    return true;
  }

  void release(std::int64_t bytes) {
    used_ -= bytes;
    if (used_ < 0) used_ = 0;
  }

  [[nodiscard]] std::int64_t capacity() const { return capacity_; }
  [[nodiscard]] std::int64_t used() const { return used_; }
  [[nodiscard]] std::int64_t peak() const { return peak_; }
  [[nodiscard]] double occupancy() const {
    return capacity_ > 0 ? static_cast<double>(used_) / static_cast<double>(capacity_)
                         : 0.0;
  }
  [[nodiscard]] std::uint64_t failed_allocations() const {
    return failed_allocations_;
  }

 private:
  std::int64_t capacity_;
  std::int64_t used_ = 0;
  std::int64_t peak_ = 0;
  std::uint64_t failed_allocations_ = 0;
};

}  // namespace gridmon::cluster
