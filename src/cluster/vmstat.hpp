// vmstat-style resource sampler.
//
// The paper recorded CPU idle and memory with Linux `vmstat` during each
// run, reporting mean CPU idle and memory consumption as peak-minus-bottom.
// This sampler reproduces those metric definitions against the simulated
// hosts.
#pragma once

#include <vector>

#include "cluster/host.hpp"
#include "sim/simulation.hpp"

namespace gridmon::cluster {

struct VmstatSample {
  SimTime at;
  double cpu_idle_pct;       ///< idle percentage over the last interval
  std::int64_t memory_used;  ///< bytes in use at sample time
};

class VmstatSampler {
 public:
  /// Samples `host` every `period` once start() is called.
  VmstatSampler(Host& host, SimTime period = units::seconds(1));

  void start();
  void stop();

  [[nodiscard]] const std::vector<VmstatSample>& samples() const {
    return samples_;
  }

  /// Mean CPU idle percentage across samples (the paper's "CPU idle").
  [[nodiscard]] double mean_cpu_idle() const;

  /// Peak minus bottom memory across samples (the paper's "memory
  /// consumption"), in bytes.
  [[nodiscard]] std::int64_t memory_consumption() const;

 private:
  void sample();

  Host& host_;
  SimTime period_;
  sim::PeriodicTimer timer_;
  SimTime last_busy_ = 0;
  std::vector<VmstatSample> samples_;
};

}  // namespace gridmon::cluster
