#include "cluster/cpu.hpp"

namespace gridmon::cluster {

SimTime Cpu::execute(SimTime demand, sim::EventFn done) {
  if (demand < 0) demand = 0;
  const auto scaled = static_cast<SimTime>(static_cast<double>(demand) / speed_);
  const SimTime now = sim_.now();
  const SimTime start = free_at_ > now ? free_at_ : now;
  free_at_ = start + scaled;
  busy_ += scaled;
  if (done) {
    sim_.schedule_at(free_at_, std::move(done));
  }
  return free_at_;
}

}  // namespace gridmon::cluster
