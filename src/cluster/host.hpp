// A Hydra node: single PIII core, JVM heap budget, thread accounting.
#pragma once

#include <memory>
#include <string>

#include "cluster/cpu.hpp"
#include "cluster/heap.hpp"
#include "cluster/jvm.hpp"
#include "net/address.hpp"
#include "sim/simulation.hpp"

namespace gridmon::cluster {

struct HostConfig {
  double cpu_speed = 1.0;             ///< relative to the PIII 866 reference
  std::int64_t memory_budget = 0;     ///< JVM process budget; 0 = use default
  bool enable_gc = true;
};

class Host {
 public:
  Host(sim::Simulation& sim, net::NodeId id, std::string name,
       HostConfig config = {});

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] net::NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Cpu& cpu() { return cpu_; }
  [[nodiscard]] Heap& heap() { return heap_; }
  [[nodiscard]] Jvm& jvm() { return *jvm_; }

  /// Spawn a connection-serving thread: charges a stack plus `extra_bytes`
  /// of per-connection state. Returns false on OOM (connection refused),
  /// which is how both middlewares' scaling walls manifest.
  [[nodiscard]] bool spawn_thread(std::int64_t extra_bytes = 0);
  void exit_thread(std::int64_t extra_bytes = 0);
  [[nodiscard]] int threads() const { return threads_; }

  /// Inflate a CPU demand by the current thread load (context switching):
  /// demand * (1 + per_thread * threads).
  [[nodiscard]] SimTime loaded(SimTime demand, double per_thread) const {
    return static_cast<SimTime>(static_cast<double>(demand) *
                                (1.0 + per_thread * threads_));
  }

 private:
  sim::Simulation& sim_;
  net::NodeId id_;
  std::string name_;
  Cpu cpu_;
  Heap heap_;
  std::unique_ptr<Jvm> jvm_;
  int threads_ = 0;
};

}  // namespace gridmon::cluster
