#include "cluster/hydra.hpp"

#include <sstream>

namespace gridmon::cluster {

Hydra::Hydra(HydraConfig config) : sim_(config.seed) {
  config.lan.node_count = config.node_count;
  lan_ = std::make_unique<net::Lan>(sim_, config.lan);
  streams_ = std::make_unique<net::StreamTransport>(*lan_);
  hosts_.reserve(static_cast<std::size_t>(config.node_count));
  for (int i = 0; i < config.node_count; ++i) {
    hosts_.push_back(std::make_unique<Host>(
        sim_, i, "hydra" + std::to_string(i + 1), config.host));
  }
}

std::string Hydra::describe() const {
  std::ostringstream out;
  out << "Hydra cluster model: " << hosts_.size()
      << " nodes (PentiumIII 866MHz class, "
      << (hosts_.empty() ? 0
                         : hosts_[0]->heap().capacity() / units::MiB)
      << " MiB JVM budget each)\n"
      << "LAN: switched, "
      << lan_->config().line_rate_bps / 1e6 << " Mbps per port, efficiency "
      << lan_->config().efficiency << " (≈"
      << lan_->config().line_rate_bps * lan_->config().efficiency / 8e6
      << " MB/s goodput), propagation "
      << units::to_micros(lan_->config().propagation) << " us\n"
      << "Software model: Sun HotSpot 1.4.2-style GC pauses, "
      << "thread-per-connection servers";
  return out.str();
}

}  // namespace gridmon::cluster
