// JVM garbage-collection pause process.
//
// HotSpot 1.4.2 stop-the-world collections are the main source of the
// latency tail in the paper's percentile plots: the broker core freezes for
// a few to a few hundred milliseconds, and every message in flight during
// the pause inherits the delay. The model draws pauses stochastically with
// probability and duration increasing in heap occupancy, and injects them
// into the host CPU as stalls.
#pragma once

#include <cstdint>

#include "cluster/cpu.hpp"
#include "cluster/heap.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace gridmon::cluster {

struct JvmGcConfig {
  SimTime check_period;
  double chance_idle;          ///< pause probability per check at empty heap
  double chance_occupancy_gain;  ///< added probability at full heap
  SimTime minor_pause_base;
  SimTime minor_pause_per_occupancy;  ///< scaled by heap occupancy
  double full_gc_threshold;           ///< occupancy above which full GCs occur
  SimTime full_gc_pause;
};

JvmGcConfig default_gc_config();

class Jvm {
 public:
  Jvm(sim::Simulation& sim, Cpu& cpu, Heap& heap, util::Rng rng,
      JvmGcConfig config);

  /// Begin the periodic GC process.
  void start();
  void stop();

  [[nodiscard]] std::uint64_t minor_collections() const { return minor_; }
  [[nodiscard]] std::uint64_t full_collections() const { return full_; }
  [[nodiscard]] SimTime total_pause_time() const { return total_pause_; }

 private:
  void check();

  sim::Simulation& sim_;
  Cpu& cpu_;
  Heap& heap_;
  util::Rng rng_;
  JvmGcConfig config_;
  sim::PeriodicTimer timer_;
  std::uint64_t minor_ = 0;
  std::uint64_t full_ = 0;
  SimTime total_pause_ = 0;
};

}  // namespace gridmon::cluster
