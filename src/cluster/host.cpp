#include "cluster/host.hpp"

#include "cluster/costs.hpp"

namespace gridmon::cluster {

Host::Host(sim::Simulation& sim, net::NodeId id, std::string name,
           HostConfig config)
    : sim_(sim),
      id_(id),
      name_(std::move(name)),
      cpu_(sim, config.cpu_speed),
      heap_(config.memory_budget > 0 ? config.memory_budget
                                     : costs::kJvmHeapBudget) {
  // Charge the resident baseline (JVM, classes, middleware singletons).
  (void)heap_.allocate(costs::kJvmBaselineBytes);
  jvm_ = std::make_unique<Jvm>(sim_, cpu_, heap_,
                               sim_.rng_stream("jvm." + name_),
                               default_gc_config());
  if (config.enable_gc) jvm_->start();
}

bool Host::spawn_thread(std::int64_t extra_bytes) {
  const std::int64_t bytes = costs::kThreadStackBytes + extra_bytes;
  if (!heap_.allocate(bytes)) return false;
  ++threads_;
  return true;
}

void Host::exit_thread(std::int64_t extra_bytes) {
  heap_.release(costs::kThreadStackBytes + extra_bytes);
  if (threads_ > 0) --threads_;
}

}  // namespace gridmon::cluster
