// NaradaBrokering-style message broker.
//
// One Broker runs on one Host. It accepts client links over blocking TCP
// (thread per connection), NIO (selector event loop) or UDP (connectionless
// with Narada's per-packet acknowledgement cycle), maintains a subscription
// table with real JMS selector evaluation, and disseminates published events
// to matching local subscribers and to peer brokers in a broker network.
//
// Scaling behaviour is emergent, not scripted:
//  - each accepted TCP connection spawns a modelled thread (stack + buffers
//    charged to the heap); allocation failure refuses the connection — the
//    paper's OOM wall near 4000 connections;
//  - per-event CPU demand is inflated by the live thread count (context
//    switching), producing the smooth RTT growth of Fig 7;
//  - queued events hold heap, which raises GC pressure, which produces the
//    latency tail of Figs 4/8/9.
//
// The v1.1.3 deficiency the paper discovered — events broadcast to every
// broker in a Distributed Broker Network whether or not a subscriber lives
// there — is the default (`subscription_aware_routing = false`); flipping
// the flag enables subscription-aware shortest-path routing over the Broker
// Network Map, which bench_ablation_dbn_routing measures.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/host.hpp"
#include "core/history.hpp"
#include "jms/selector.hpp"
#include "narada/bnm.hpp"
#include "narada/frames.hpp"
#include "narada/transport.hpp"
#include "net/http.hpp"
#include "net/stream.hpp"

namespace gridmon::narada {

struct BrokerConfig {
  net::Endpoint endpoint;
  TransportKind transport = TransportKind::kTcp;
  int broker_id = 0;
  /// false reproduces the v1.1.3 broadcast deficiency; true routes events
  /// only toward brokers with matching subscriptions.
  bool subscription_aware_routing = false;
  /// Reconnect backfill replication: retain published frames per
  /// (topic, origin broker) in a tiered HistoryBuffer and serve gap
  /// replays to reconnecting clients and healing peers. Off keeps every
  /// frame and wire size byte-identical to the classic runs.
  bool replay = false;
  core::RetentionConfig retention;
};

struct BrokerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_refused = 0;
  std::uint64_t events_received = 0;     ///< publishes from clients
  std::uint64_t events_delivered = 0;    ///< deliveries to local subscribers
  std::uint64_t events_forwarded = 0;    ///< relays to peer brokers
  std::uint64_t events_from_peers = 0;
  std::uint64_t udp_acks_sent = 0;
  std::uint64_t crashes = 0;             ///< fault-injected crash/restarts
  std::uint64_t backfill_msgs = 0;   ///< messages replayed from retention
  std::int64_t backfill_bytes = 0;   ///< wire bytes of replay traffic served
};

class Broker {
 public:
  Broker(cluster::Host& host, net::Lan& lan, net::StreamTransport& streams,
         BrokerConfig config);
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Begin listening (stream) and bind the UDP port.
  void start();

  /// Fault injection: kill the broker process. The listener closes, every
  /// client connection is torn down (their threads/buffers are reclaimed),
  /// and all soft state — subscriptions, queue cursors, pending UDP acks —
  /// is lost. Inter-broker links are owned by the DBN controller and assumed
  /// warm across the restart (the unit-controller keeps them up); chaos DBN
  /// scenarios cut them explicitly via Lan::set_path_blocked instead.
  void crash();
  /// Bring a crashed broker back up, empty: clients must reconnect and
  /// resubscribe before they see traffic again.
  void restart();
  [[nodiscard]] bool crashed() const { return crashed_; }

  /// Wire this broker into a network: `conn` is an established inter-broker
  /// stream, `side` our side of it. Called by the Dbn assembler.
  void add_peer(int peer_id, net::StreamConnectionPtr conn, int side);

  /// Provide the network map used for subscription-aware routing.
  void set_network_map(const BrokerNetworkMap* map) { map_ = map; }

  /// Replication repair after a partition heals: ask every peer to replay
  /// the retained frames we are missing (per-origin high watermarks).
  /// No-op unless `config.replay` is on.
  void request_peer_backfill();
  /// Bytes currently held in retention (sums every (topic, origin) tier).
  [[nodiscard]] std::int64_t retained_bytes() const;

  [[nodiscard]] const BrokerStats& stats() const { return stats_; }
  [[nodiscard]] cluster::Host& host() { return host_; }
  [[nodiscard]] net::Endpoint endpoint() const { return config_.endpoint; }
  [[nodiscard]] int id() const { return config_.broker_id; }
  [[nodiscard]] int subscription_count() const {
    return static_cast<int>(subscriptions_.size());
  }

 private:
  struct Subscription {
    std::uint64_t id = 0;
    std::string topic;
    bool is_queue = false;  ///< PTP receiver rather than topic subscriber
    jms::Selector selector;
    jms::AcknowledgeMode ack_mode = jms::AcknowledgeMode::kAutoAcknowledge;
    // Delivery target: stream connection (broker side) or UDP endpoint.
    net::StreamConnectionPtr conn;
    int conn_side = 1;
    net::Endpoint udp;
    bool via_udp = false;
    /// Replay chain: per-origin sequence of the last matching message sent
    /// to this subscriber (stamped as prev_seq so the client detects gaps
    /// even through a selector that filters most of the stream).
    std::map<int, std::uint64_t> last_sent;
  };

  struct Peer {
    int id = -1;
    net::StreamConnectionPtr conn;
    int side = 0;
  };

  void on_stream_accept(net::StreamConnectionPtr conn);
  void on_client_frame(const net::StreamConnectionPtr& conn,
                       const net::Datagram& datagram);
  void on_udp_datagram(const net::Datagram& datagram);
  void on_peer_frame(std::size_t peer_index, const net::Datagram& datagram);

  /// Ingest a publish from a client (after any transport-specific delay).
  void ingest_publish(const FramePtr& frame);
  /// Relay/terminate a forwarded event from a peer.
  void ingest_forward(const FramePtr& frame);

  /// Match subscriptions and deliver to local subscribers. Topics fan out;
  /// queues round-robin among their receivers (JMS PTP). `origin`/`seq`
  /// carry the retention stamp when replay is on (-1/0 otherwise).
  void deliver_local(const jms::MessagePtr& message, const std::string& topic,
                     bool is_queue, int origin = -1, std::uint64_t seq = 0);
  /// Retain one message under (topic, origin) at the given sequence.
  /// Returns false for duplicates (stale peer-replay traffic).
  bool retain(const std::string& topic, int origin, std::uint64_t seq,
              const jms::MessagePtr& message);
  /// Serve a gap replay to a client subscription or a healing peer.
  void handle_backfill_request(const net::StreamConnectionPtr& conn,
                               const FramePtr& frame);
  void handle_peer_backfill_request(std::size_t peer_index,
                                    const FramePtr& frame);
  /// Send the event toward peer brokers per the routing policy.
  /// `first_seq` stamps the forward frames when replay is on.
  void disseminate(const FramePtr& frame, std::uint64_t first_seq = 0);
  void send_to_peer(int peer_id, const FramePtr& frame);
  void advertise_subscription(const std::string& topic);

  [[nodiscard]] SimTime event_service_demand(std::int64_t bytes,
                                             int fanout) const;

  cluster::Host& host_;
  net::Lan& lan_;
  net::StreamTransport& streams_;
  BrokerConfig config_;
  const BrokerNetworkMap* map_ = nullptr;
  util::Rng rng_;

  std::vector<Subscription> subscriptions_;
  /// Stream connections accepted from clients, kept so crash() can tear
  /// them down and return their thread/buffer accounting.
  std::vector<net::StreamConnectionPtr> client_conns_;
  std::vector<Peer> peers_;
  /// Topic interest advertised by each broker in the network (flooded
  /// kPeerSubscribe frames, deduplicated by (origin, topic)).
  std::map<int, std::set<std::string>> remote_topics_;
  /// Round-robin cursor per queue destination (PTP dispatch).
  std::map<std::string, std::size_t> queue_cursor_;
  std::uint64_t next_subscription_id_ = 1;
  std::uint64_t next_message_seq_ = 1;

  /// Tiered retention per (topic, origin broker). Wiped by crash() — the
  /// retained frames die with the process.
  std::map<std::pair<std::string, int>, core::HistoryBuffer> history_;
  /// Per-topic sequence counters for locally-published frames. These
  /// survive crash(): a durable broker journals its high watermark even
  /// when the retained messages are lost, so post-restart stamps stay
  /// monotone and client cursors never see a wrapped stream.
  std::map<std::string, std::uint64_t> next_history_seq_;

  /// UDP publishes held until the next acknowledgement flush.
  std::deque<FramePtr> udp_pending_;
  sim::PeriodicTimer udp_ack_timer_;
  bool started_ = false;
  bool crashed_ = false;

  BrokerStats stats_;
};

}  // namespace gridmon::narada
