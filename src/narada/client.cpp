#include "narada/client.hpp"


#include <algorithm>

#include "cluster/costs.hpp"
#include "obs/memprof.hpp"

namespace gridmon::narada {

namespace costs = cluster::costs;

std::shared_ptr<NaradaClient> NaradaClient::create(
    cluster::Host& host, net::Lan& lan, net::StreamTransport& streams,
    net::Endpoint broker, net::Endpoint local, TransportKind transport) {
  return std::shared_ptr<NaradaClient>(
      new NaradaClient(host, lan, streams, broker, local, transport));
}

NaradaClient::NaradaClient(cluster::Host& host, net::Lan& lan,
                           net::StreamTransport& streams, net::Endpoint broker,
                           net::Endpoint local, TransportKind transport)
    : host_(host),
      lan_(lan),
      streams_(streams),
      broker_(broker),
      local_(local),
      transport_(transport) {
  // Model-memory accounting: one per-client record (the ROADMAP's
  // million-generator wall is exactly this state times a million).
  obs::mem_add(obs::MemCategory::kClientRecords, sizeof(NaradaClient));
}

NaradaClient::~NaradaClient() {
  if (udp_bound_) lan_.unbind(local_);
  obs::mem_sub(obs::MemCategory::kClientRecords, sizeof(NaradaClient));
}

void NaradaClient::notify_ready(bool ok) {
  auto callback = std::move(on_ready_);
  on_ready_ = nullptr;
  if (callback) callback(ok);
}

void NaradaClient::set_reconnect_policy(ReconnectPolicy policy) {
  reconnect_ = policy;
  // Deterministic jitter: a named kernel stream keyed by the client's
  // endpoint, independent of event-arrival order.
  reconnect_rng_ = host_.sim()
                       .rng_stream("narada.reconnect")
                       .stream((static_cast<std::uint64_t>(local_.node) << 16) |
                               local_.port);
}

void NaradaClient::set_replay(SimTime settle, int max_retries) {
  replay_enabled_ = true;
  replay_settle_ = settle;
  replay_max_retries_ = max_retries;
}

void NaradaClient::connect(ReadyHandler on_ready) {
  on_ready_ = std::move(on_ready);
  if (transport_ == TransportKind::kUdp) {
    // Connectionless: bind the local port for deliveries/acks and become
    // ready immediately; registration happens per subscription.
    lan_.bind(local_, [self = weak_from_this()](const net::Datagram& dg) {
      if (auto client = self.lock()) client->on_frame(dg);
    });
    udp_bound_ = true;
    ready_ = true;
    notify_ready(true);
    while (!backlog_.empty()) {
      FramePtr frame = backlog_.front();
      backlog_.pop_front();
      send_frame(std::move(frame));
    }
    return;
  }

  streams_.connect(local_, broker_, [self = weak_from_this()](
                                        net::StreamConnectionPtr conn) {
    auto client = self.lock();
    if (!client) return;
    if (!conn) {
      client->refused_ = true;
      client->notify_ready(false);
      return;
    }
    client->adopt_connection(std::move(conn));
  });
}

void NaradaClient::adopt_connection(net::StreamConnectionPtr conn) {
  conn_ = conn;
  auto self = weak_from_this();
  conn->set_handler(
      0,
      [self](const net::Datagram& dg) {
        if (auto c = self.lock()) c->on_frame(dg);
      },
      [self] {
        auto c = self.lock();
        if (!c) return;
        if (!c->ready_) {
          if (c->reconnecting_) {
            // A reconnect attempt died before its welcome frame (broker
            // still down, or down again): back off and retry.
            c->schedule_reconnect();
            return;
          }
          // Closed before the welcome frame: the broker refused us
          // (out of memory creating the connection thread).
          c->refused_ = true;
          c->notify_ready(false);
          return;
        }
        // Established link lost (broker crash, NIC failure). Without a
        // reconnect policy this is permanent — the no-recovery baseline.
        c->ready_ = false;
        c->conn_.reset();
        // Any in-flight backfill died with the link; the post-welcome
        // resubscribe path starts a fresh round.
        c->backfill_pending_ = false;
        c->backfill_round_ = 0;
        if (c->reconnect_.enabled) c->schedule_reconnect();
      });
}

void NaradaClient::schedule_reconnect() {
  if (reconnect_.max_attempts > 0 &&
      reconnect_attempt_ >= reconnect_.max_attempts) {
    reconnecting_ = false;
    return;
  }
  reconnecting_ = true;
  ++reconnect_attempt_;
  ++reconnects_;
  if (!reconnect_.fallbacks.empty() && reconnect_.rehome_after > 0 &&
      reconnect_attempt_ % reconnect_.rehome_after == 0) {
    // Persistent failures: fail over to the next surviving broker in the
    // network instead of waiting out the crashed one.
    broker_ =
        reconnect_.fallbacks[fallback_index_ % reconnect_.fallbacks.size()];
    ++fallback_index_;
    ++rehomes_;
  }
  double delay = static_cast<double>(reconnect_.backoff_initial);
  for (int i = 1; i < reconnect_attempt_; ++i) {
    delay *= reconnect_.multiplier;
    if (delay >= static_cast<double>(reconnect_.backoff_max)) break;
  }
  delay = std::min(delay, static_cast<double>(reconnect_.backoff_max));
  if (reconnect_.jitter > 0.0) {
    delay *= 1.0 + reconnect_rng_.uniform(0.0, reconnect_.jitter);
  }
  host_.sim().schedule_after(
      static_cast<SimTime>(delay),
      [self = weak_from_this()] {
        if (auto c = self.lock()) c->attempt_reconnect();
      });
}

void NaradaClient::attempt_reconnect() {
  streams_.connect(local_, broker_, [self = weak_from_this()](
                                        net::StreamConnectionPtr conn) {
    auto c = self.lock();
    if (!c) return;
    if (!conn) {
      // Listener still closed: the broker has not restarted yet.
      c->schedule_reconnect();
      return;
    }
    c->adopt_connection(std::move(conn));
  });
}

void NaradaClient::resubscribe() {
  ++resubscribes_;
  Frame frame;
  frame.kind = FrameKind::kSubscribe;
  frame.topic = subscribed_topic_;
  frame.is_queue = subscribed_is_queue_;
  frame.selector = subscribed_selector_;
  frame.ack_mode = ack_mode_;
  frame.reply_to = local_;
  send_frame(std::make_shared<const Frame>(std::move(frame)));
}

void NaradaClient::send_frame(FramePtr frame) {
  if (!ready_) {
    backlog_.push_back(std::move(frame));
    return;
  }
  const std::int64_t wire = frame_wire_size(*frame);
  if (transport_ == TransportKind::kUdp) {
    lan_.send_datagram(local_, broker_, wire, frame);
  } else if (conn_ && conn_->open()) {
    conn_->send(0, wire, frame);
  }
}

void NaradaClient::subscribe(const std::string& topic,
                             const std::string& selector,
                             jms::AcknowledgeMode ack_mode,
                             DeliveryListener listener) {
  subscribed_topic_ = topic;
  subscribed_selector_ = selector;
  subscribed_is_queue_ = false;
  has_subscription_ = true;
  ack_mode_ = ack_mode;
  listener_ = std::move(listener);

  auto frame = std::make_shared<const Frame>(Frame{
      FrameKind::kSubscribe, topic, selector, ack_mode, 0, nullptr, -1, -1,
      local_});
  send_frame(std::move(frame));
}

void NaradaClient::receive_from_queue(const std::string& queue,
                                      const std::string& selector,
                                      jms::AcknowledgeMode ack_mode,
                                      DeliveryListener listener) {
  subscribed_topic_ = queue;
  subscribed_selector_ = selector;
  subscribed_is_queue_ = true;
  has_subscription_ = true;
  ack_mode_ = ack_mode;
  listener_ = std::move(listener);

  Frame frame;
  frame.kind = FrameKind::kSubscribe;
  frame.topic = queue;
  frame.is_queue = true;
  frame.selector = selector;
  frame.ack_mode = ack_mode;
  frame.reply_to = local_;
  send_frame(std::make_shared<const Frame>(std::move(frame)));
}

void NaradaClient::publish_to_queue(jms::Message message,
                                    SendCallback on_sent) {
  message.message_id = "ID:" + std::to_string(local_.node) + "-" +
                       std::to_string(local_.port) + "-" +
                       std::to_string(next_message_seq_++);
  message.timestamp = host_.sim().now();
  auto shared = std::make_shared<const jms::Message>(std::move(message));
  const std::int64_t bytes = shared->wire_size();
  const SimTime demand =
      costs::kClientSendBase +
      static_cast<SimTime>(static_cast<double>(bytes) *
                           costs::kSerializePerByteNs);
  host_.cpu().execute(demand, [self = shared_from_this(), shared,
                               on_sent = std::move(on_sent)] {
    Frame frame;
    frame.kind = FrameKind::kPublish;
    frame.topic = shared->destination;
    frame.is_queue = true;
    frame.ack_mode = self->ack_mode_;
    frame.message = shared;
    frame.reply_to = self->local_;
    self->send_frame(std::make_shared<const Frame>(std::move(frame)));
    ++self->published_;
    if (on_sent) on_sent(self->host_.sim().now());
  });
}

void NaradaClient::enable_aggregation(int batch_size, SimTime max_delay) {
  aggregation_size_ = batch_size > 1 ? batch_size : 1;
  aggregation_delay_ = max_delay;
}

void NaradaClient::flush_aggregation() {
  if (aggregation_buffer_.empty()) return;
  aggregation_flush_.cancel();
  auto batch = std::move(aggregation_buffer_);
  aggregation_buffer_.clear();

  // One serialisation pass for the whole batch: per-message overhead is
  // amortised — exactly the RMM effect.
  std::int64_t bytes = kFrameHeaderBytes;
  for (const auto& [message, cb] : batch) bytes += message->wire_size();
  const SimTime demand =
      costs::kClientSendBase +
      static_cast<SimTime>(static_cast<double>(bytes) *
                           costs::kSerializePerByteNs);
  host_.cpu().execute(demand, [self = shared_from_this(),
                               batch = std::move(batch)] {
    Frame frame;
    frame.kind = FrameKind::kPublish;
    frame.topic = batch.front().first->destination;
    frame.ack_mode = self->ack_mode_;
    frame.reply_to = self->local_;
    frame.batch.reserve(batch.size());
    for (const auto& [message, cb] : batch) frame.batch.push_back(message);
    self->send_frame(std::make_shared<const Frame>(std::move(frame)));
    const SimTime now = self->host_.sim().now();
    for (const auto& [message, cb] : batch) {
      ++self->published_;
      if (cb) cb(now);
    }
  });
}

void NaradaClient::publish(jms::Message message, SendCallback on_sent) {
  // JMS provider stamps headers on send.
  message.message_id = "ID:" + std::to_string(local_.node) + "-" +
                       std::to_string(local_.port) + "-" +
                       std::to_string(next_message_seq_++);
  message.timestamp = host_.sim().now();
  auto shared = std::make_shared<const jms::Message>(std::move(message));
  const std::int64_t bytes = shared->wire_size();

  if (aggregation_size_ > 1) {
    aggregation_buffer_.emplace_back(shared, std::move(on_sent));
    if (static_cast<int>(aggregation_buffer_.size()) >= aggregation_size_) {
      flush_aggregation();
    } else if (aggregation_buffer_.size() == 1) {
      aggregation_flush_ = host_.sim().schedule_after(
          aggregation_delay_,
          [self = shared_from_this()] { self->flush_aggregation(); });
    }
    return;
  }

  // The synchronous half of publish: assemble + serialise on this host's
  // CPU; the call "returns" when that completes.
  const SimTime demand =
      costs::kClientSendBase +
      static_cast<SimTime>(static_cast<double>(bytes) *
                           costs::kSerializePerByteNs);
  host_.cpu().execute(demand, [self = shared_from_this(), shared,
                               on_sent = std::move(on_sent)] {
    auto frame = std::make_shared<const Frame>(Frame{
        FrameKind::kPublish, shared->destination, {}, self->ack_mode_, 0,
        shared, -1, -1, self->local_});
    self->send_frame(std::move(frame));
    ++self->published_;
    if (on_sent) on_sent(self->host_.sim().now());
  });
}

void NaradaClient::acknowledge() {
  host_.cpu().charge(costs::kClientAckCost);
  auto frame = std::make_shared<const Frame>(Frame{
      FrameKind::kClientAck, subscribed_topic_, {}, ack_mode_, 0, nullptr, -1,
      -1, local_});
  send_frame(std::move(frame));
}

void NaradaClient::on_frame(const net::Datagram& datagram) {
  if (!datagram.payload.has_value()) return;
  const auto* maybe = std::any_cast<FramePtr>(&datagram.payload);
  if (maybe == nullptr || !*maybe) return;
  const FramePtr& frame = *maybe;

  if (frame->kind == FrameKind::kDeliver && frame->topic == "$welcome") {
    if (!ready_) {
      ready_ = true;
      const bool was_reconnect = reconnecting_;
      reconnecting_ = false;
      reconnect_attempt_ = 0;
      notify_ready(true);
      // Re-establish broker-side state lost in the crash before flushing
      // anything the application published during the outage.
      if (was_reconnect && has_subscription_) resubscribe();
      while (!backlog_.empty()) {
        FramePtr queued = backlog_.front();
        backlog_.pop_front();
        send_frame(std::move(queued));
      }
      // Close the disconnection gap: once resubscribed, ask the (possibly
      // new) broker to replay what we missed since our cursors.
      if (was_reconnect && replay_enabled_ && has_subscription_ &&
          !subscribed_is_queue_) {
        schedule_backfill();
      }
    }
    return;
  }
  if (frame->kind == FrameKind::kDeliver) {
    if (replay_enabled_ && frame->history_seq > 0 &&
        !track_replay_delivery(frame)) {
      return;  // duplicate of a sequence the replay layer already delivered
    }
    handle_deliver(frame, host_.sim().now());
  } else if (frame->kind == FrameKind::kBackfillReply) {
    on_backfill_reply(frame);
  }
}

bool NaradaClient::track_replay_delivery(const FramePtr& frame) {
  auto& cursor = cursors_[frame->origin_broker];
  const std::uint64_t seq = frame->history_seq;
  if (seq <= cursor.last || cursor.ahead.count(seq) > 0) return false;
  if (frame->backfill) {
    // Served from retention: fills a hole behind the live stream.
    cursor.ahead.insert(seq);
    ++backfill_received_;
    backfill_bytes_ += frame_wire_size(*frame);
  } else if (frame->prev_seq <= cursor.last &&
             (frame->prev_seq > 0 || cursor.last == 0)) {
    // Live frame whose chain connects (the previous matching message was
    // seen): advance the watermark directly. prev_seq == 0 means a fresh
    // broker-side subscription chain — that only "connects" when this
    // client is fresh too, otherwise a resubscribe after a crash would
    // silently jump the cursor over the whole disconnection gap.
    cursor.last = seq;
  } else {
    // The previous matching message never arrived — a gap the wire dropped
    // silently. Deliver this frame anyway and ask for a replay.
    cursor.ahead.insert(seq);
    schedule_backfill();
  }
  // Drain anything now contiguous (or stale) out of the ahead set.
  while (!cursor.ahead.empty()) {
    const std::uint64_t front = *cursor.ahead.begin();
    if (front > cursor.last + 1) break;
    cursor.last = std::max(cursor.last, front);
    cursor.ahead.erase(cursor.ahead.begin());
  }
  return true;
}

void NaradaClient::on_backfill_reply(const FramePtr& frame) {
  backfill_pending_ = false;
  bool gap_remains = false;
  for (const BackfillCursor& c : frame->cursors) {
    auto& cursor = cursors_[c.origin];
    // Everything the broker retains up to c.seq was replayed ahead of this
    // reply on the same FIFO link (or evicted — honestly lost either way):
    // advance the watermark past the served window.
    cursor.last = std::max(cursor.last, c.seq);
    while (!cursor.ahead.empty()) {
      const std::uint64_t front = *cursor.ahead.begin();
      if (front > cursor.last + 1) break;
      cursor.last = std::max(cursor.last, front);
      cursor.ahead.erase(cursor.ahead.begin());
    }
    if (!cursor.ahead.empty()) gap_remains = true;
  }
  if (gap_remains && backfill_round_ < replay_max_retries_) {
    // Live frames raced past the served window while the reply was in
    // flight; one more bounded round picks up the stragglers.
    ++backfill_round_;
    schedule_backfill();
  } else {
    backfill_round_ = 0;
  }
}

void NaradaClient::schedule_backfill() {
  if (!replay_enabled_ || backfill_pending_) return;
  if (!has_subscription_ || subscribed_is_queue_) return;
  backfill_pending_ = true;
  host_.sim().schedule_after(replay_settle_, [self = weak_from_this()] {
    if (auto c = self.lock()) c->request_backfill();
  });
}

void NaradaClient::request_backfill() {
  if (!replay_enabled_) return;
  if (!ready_) {
    // The link dropped again while we were settling; the next welcome's
    // resubscribe path schedules a fresh round.
    backfill_pending_ = false;
    return;
  }
  Frame frame;
  frame.kind = FrameKind::kBackfillRequest;
  frame.topic = subscribed_topic_;
  for (const auto& [origin, cursor] : cursors_) {
    frame.cursors.push_back({origin, cursor.last, false});
  }
  send_frame(std::make_shared<const Frame>(std::move(frame)));
}

void NaradaClient::handle_deliver(const FramePtr& frame, SimTime arrived_at) {
  if (!frame->message) return;
  const std::int64_t bytes = frame->message->wire_size();
  SimTime demand =
      costs::kClientReceiveBase +
      static_cast<SimTime>(static_cast<double>(bytes) *
                           costs::kSerializePerByteNs);
  SimTime extra = 0;
  if (ack_mode_ == jms::AcknowledgeMode::kClientAcknowledge) {
    // Session bookkeeping before the listener sees the message, plus the
    // application's acknowledge() round.
    demand += costs::kClientAckCost;
    extra = costs::kClientAckExtraLatency;
  }
  auto self = shared_from_this();
  host_.sim().schedule_after(extra, [self, frame, arrived_at, demand] {
    self->host_.cpu().execute(demand, [self, frame, arrived_at] {
      ++self->received_;
      if (self->listener_) self->listener_(frame->message, arrived_at);
    });
  });
}

}  // namespace gridmon::narada
