#include "narada/bnm.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace gridmon::narada {

BrokerNetworkMap::BrokerNetworkMap(int broker_count) {
  if (broker_count < 0) {
    throw std::invalid_argument("BrokerNetworkMap: negative broker count");
  }
  adjacency_.resize(static_cast<std::size_t>(broker_count));
}

int BrokerNetworkMap::add_broker() {
  adjacency_.emplace_back();
  return broker_count() - 1;
}

void BrokerNetworkMap::check(int broker) const {
  if (broker < 0 || broker >= broker_count()) {
    throw std::out_of_range("BrokerNetworkMap: invalid broker index " +
                            std::to_string(broker));
  }
}

void BrokerNetworkMap::add_link(int a, int b, double cost) {
  check(a);
  check(b);
  if (a == b) throw std::invalid_argument("BrokerNetworkMap: self link");
  if (cost <= 0) throw std::invalid_argument("BrokerNetworkMap: cost <= 0");
  adjacency_[static_cast<std::size_t>(a)].push_back(Edge{b, cost});
  adjacency_[static_cast<std::size_t>(b)].push_back(Edge{a, cost});
}

bool BrokerNetworkMap::linked(int a, int b) const {
  check(a);
  check(b);
  const auto& edges = adjacency_[static_cast<std::size_t>(a)];
  return std::any_of(edges.begin(), edges.end(),
                     [b](const Edge& e) { return e.to == b; });
}

void BrokerNetworkMap::dijkstra(int from, std::vector<double>& dist,
                                std::vector<int>& prev) const {
  const auto n = adjacency_.size();
  dist.assign(n, kUnreachable);
  prev.assign(n, -1);
  dist[static_cast<std::size_t>(from)] = 0.0;

  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  frontier.emplace(0.0, from);
  while (!frontier.empty()) {
    const auto [d, u] = frontier.top();
    frontier.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const Edge& edge : adjacency_[static_cast<std::size_t>(u)]) {
      const double nd = d + edge.cost;
      if (nd < dist[static_cast<std::size_t>(edge.to)]) {
        dist[static_cast<std::size_t>(edge.to)] = nd;
        prev[static_cast<std::size_t>(edge.to)] = u;
        frontier.emplace(nd, edge.to);
      }
    }
  }
}

double BrokerNetworkMap::distance(int from, int to) const {
  check(from);
  check(to);
  std::vector<double> dist;
  std::vector<int> prev;
  dijkstra(from, dist, prev);
  return dist[static_cast<std::size_t>(to)];
}

std::vector<int> BrokerNetworkMap::shortest_path(int from, int to) const {
  check(from);
  check(to);
  std::vector<double> dist;
  std::vector<int> prev;
  dijkstra(from, dist, prev);
  if (dist[static_cast<std::size_t>(to)] == kUnreachable) return {};
  std::vector<int> path;
  for (int at = to; at != -1; at = prev[static_cast<std::size_t>(at)]) {
    path.push_back(at);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

int BrokerNetworkMap::next_hop(int from, int to) const {
  if (from == to) return -1;
  const auto path = shortest_path(from, to);
  if (path.size() < 2) return -1;
  return path[1];
}

std::vector<int> BrokerNetworkMap::neighbours(int broker) const {
  check(broker);
  std::vector<int> out;
  for (const Edge& e : adjacency_[static_cast<std::size_t>(broker)]) {
    out.push_back(e.to);
  }
  return out;
}

}  // namespace gridmon::narada
