// Distributed Broker Network assembler.
//
// The paper's DBN used four nodes: one acted as the unit controller and
// assigned addresses to the other three, brokers interconnected into a
// network, publishers attached to publishing brokers and subscribers to
// subscribing brokers. This class plays the unit-controller/Broker
// Discovery Node role: it instantiates one broker per given host, assigns
// endpoints, wires the inter-broker topology, and hands out broker
// addresses to connecting clients.
#pragma once

#include <memory>
#include <vector>

#include "cluster/hydra.hpp"
#include "narada/bnm.hpp"
#include "narada/broker.hpp"

namespace gridmon::narada {

enum class DbnTopology { kFullMesh, kChain, kStar };

struct DbnConfig {
  std::vector<int> broker_hosts;  ///< Hydra host indices, one broker each
  TransportKind transport = TransportKind::kTcp;
  bool subscription_aware_routing = false;
  DbnTopology topology = DbnTopology::kFullMesh;
  std::uint16_t base_port = 5000;
  /// Reconnect backfill replication (forwarded into each BrokerConfig).
  bool replay = false;
  core::RetentionConfig retention;
};

class Dbn {
 public:
  Dbn(cluster::Hydra& hydra, DbnConfig config);

  /// Start all brokers and initiate inter-broker connections (completes
  /// within simulated milliseconds).
  void start();

  [[nodiscard]] int broker_count() const { return static_cast<int>(brokers_.size()); }
  [[nodiscard]] Broker& broker(int i) { return *brokers_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] net::Endpoint broker_endpoint(int i) const;
  [[nodiscard]] const BrokerNetworkMap& map() const { return map_; }

  /// Broker Discovery Node service: hand out broker addresses round-robin
  /// within the given role partition. With N brokers, the first half serve
  /// publishers and the second half subscribers (the paper's publishing /
  /// subscribing broker split); with one broker everyone shares it.
  [[nodiscard]] net::Endpoint assign_publisher_broker();
  [[nodiscard]] net::Endpoint assign_subscriber_broker();

  /// Aggregate stats across brokers.
  [[nodiscard]] BrokerStats total_stats() const;

  /// Replication repair: every broker asks its peers to replay the retained
  /// frames it is missing. Call after a partition heals.
  void request_peer_backfill();
  /// Bytes currently held in retention across the whole network.
  [[nodiscard]] std::int64_t retained_bytes() const;

 private:
  cluster::Hydra& hydra_;
  DbnConfig config_;
  BrokerNetworkMap map_;
  std::vector<std::unique_ptr<Broker>> brokers_;
  int next_pub_ = 0;
  int next_sub_ = 0;
  std::uint16_t next_link_port_;
};

}  // namespace gridmon::narada
