#include "narada/broker.hpp"


#include <algorithm>

#include "cluster/costs.hpp"
#include "obs/memprof.hpp"
#include "obs/recorder.hpp"
#include "util/log.hpp"

namespace gridmon::narada {

namespace costs = cluster::costs;

namespace {

/// Hop-span mark for every message a frame carries (no-op unless the run
/// has an observability recorder installed and the message is sampled).
void mark_frame(const FramePtr& frame, std::string_view stage) {
  if constexpr (!obs::kEnabled) return;
  if (obs::tracer() == nullptr) return;
  if (frame->message) obs::mark_message(frame->message->message_id, stage);
  for (const auto& message : frame->batch) {
    obs::mark_message(message->message_id, stage);
  }
}

}  // namespace

Broker::Broker(cluster::Host& host, net::Lan& lan,
               net::StreamTransport& streams, BrokerConfig config)
    : host_(host),
      lan_(lan),
      streams_(streams),
      config_(config),
      rng_(host.sim().rng_stream("narada.broker." +
                                 std::to_string(config.broker_id))) {}

Broker::~Broker() {
  if (started_ && !crashed_) {
    streams_.close_listener(config_.endpoint);
    if (lan_.bound(config_.endpoint)) lan_.unbind(config_.endpoint);
  }
}

void Broker::crash() {
  if (!started_ || crashed_) return;
  crashed_ = true;
  ++stats_.crashes;
  streams_.close_listener(config_.endpoint);
  if (lan_.bound(config_.endpoint)) lan_.unbind(config_.endpoint);
  // Tear down every client link; the process's threads and buffers go with
  // it. Clients observe the close (their reconnect policy takes over).
  for (auto& conn : client_conns_) {
    if (config_.transport == TransportKind::kNio) {
      host_.heap().release(costs::kConnectionBufferBytes);
    } else {
      host_.exit_thread(costs::kConnectionBufferBytes);
    }
    if (conn && conn->open()) conn->close();
  }
  client_conns_.clear();
  for (const auto& sub : subscriptions_) {
    if (sub.via_udp) host_.heap().release(costs::kConnectionBufferBytes / 4);
    obs::mem_sub(obs::MemCategory::kBrokerRouting,
                 static_cast<std::int64_t>(sizeof(Subscription) +
                                           sub.topic.size()));
  }
  subscriptions_.clear();
  queue_cursor_.clear();
  udp_pending_.clear();
  // Retained frames die with the process (the HistoryBuffer destructors
  // release the mem_history accounting). The per-topic sequence counters
  // survive — a durable broker journals its high watermark — so stamps
  // stay monotone across the restart.
  history_.clear();
  GRIDMON_WARN("narada.broker")
      << "broker " << config_.broker_id << " crashed";
}

void Broker::restart() {
  if (!started_ || !crashed_) return;
  crashed_ = false;
  streams_.listen(config_.endpoint, [this](net::StreamConnectionPtr conn) {
    on_stream_accept(std::move(conn));
  });
  lan_.bind(config_.endpoint,
            [this](const net::Datagram& dg) { on_udp_datagram(dg); });
  GRIDMON_WARN("narada.broker")
      << "broker " << config_.broker_id << " restarted";
}

void Broker::start() {
  started_ = true;
  streams_.listen(config_.endpoint, [this](net::StreamConnectionPtr conn) {
    on_stream_accept(std::move(conn));
  });
  lan_.bind(config_.endpoint,
            [this](const net::Datagram& dg) { on_udp_datagram(dg); });
  if (config_.transport == TransportKind::kUdp) {
    udp_ack_timer_ = sim::PeriodicTimer(
        host_.sim(), host_.sim().now() + costs::kUdpAckFlushPeriod,
        costs::kUdpAckFlushPeriod, [this] {
          // Acknowledge and release everything that arrived this cycle.
          while (!udp_pending_.empty()) {
            FramePtr frame = udp_pending_.front();
            udp_pending_.pop_front();
            host_.cpu().charge(costs::kUdpAckProcessing);
            lan_.send_datagram(config_.endpoint, frame->reply_to,
                               kControlFrameBytes, FramePtr{});
            ++stats_.udp_acks_sent;
            ingest_publish(frame);
          }
        });
  }
}

void Broker::on_stream_accept(net::StreamConnectionPtr conn) {
  if (crashed_) {
    conn->close();
    return;
  }
  // Blocking TCP dedicates a thread per connection; NIO only allocates
  // connection buffers on the shared selector loop.
  bool admitted;
  if (config_.transport == TransportKind::kNio) {
    admitted = host_.heap().allocate(costs::kConnectionBufferBytes);
  } else {
    admitted = host_.spawn_thread(costs::kConnectionBufferBytes);
  }
  if (!admitted) {
    ++stats_.connections_refused;
    if (stats_.connections_refused == 1) {
      GRIDMON_WARN("narada.broker")
          << "broker " << config_.broker_id
          << " refused connection (out of memory), threads="
          << host_.threads() << " (further refusals logged at debug)";
    } else {
      GRIDMON_DEBUG("narada.broker")
          << "broker " << config_.broker_id << " refused connection";
    }
    conn->close();
    return;
  }
  ++stats_.connections_accepted;
  client_conns_.push_back(conn);
  // Weak capture: the handler lives inside the connection, so a by-value
  // shared_ptr would form a self-cycle that outlives broker and client.
  // client_conns_ (and any in-flight frame events) keep the connection
  // alive for as long as the handler can still fire.
  conn->set_handler(
      1, [this, wconn = std::weak_ptr<net::StreamConnection>(conn)](
             const net::Datagram& dg) {
        if (auto conn = wconn.lock()) on_client_frame(conn, dg);
      });
  // Welcome handshake: client treats close-before-welcome as refusal.
  Frame welcome;
  welcome.kind = FrameKind::kDeliver;
  welcome.topic = "$welcome";
  conn->send(1, kControlFrameBytes, std::make_shared<const Frame>(welcome));
}

void Broker::on_client_frame(const net::StreamConnectionPtr& conn,
                             const net::Datagram& datagram) {
  if (crashed_) return;
  const auto frame = std::any_cast<FramePtr>(datagram.payload);
  switch (frame->kind) {
    case FrameKind::kSubscribe: {
      Subscription sub;
      sub.id = next_subscription_id_++;
      sub.topic = frame->topic;
      sub.is_queue = frame->is_queue;
      sub.selector = jms::Selector::parse(frame->selector);
      sub.ack_mode = frame->ack_mode;
      sub.conn = conn;
      sub.conn_side = 1;
      obs::mem_add(obs::MemCategory::kBrokerRouting,
                   static_cast<std::int64_t>(sizeof(Subscription) +
                                             sub.topic.size()));
      subscriptions_.push_back(std::move(sub));
      advertise_subscription(frame->topic);
      break;
    }
    case FrameKind::kUnsubscribe:
      std::erase_if(subscriptions_, [&](const Subscription& s) {
        const bool drop = s.conn == conn && s.topic == frame->topic;
        if (drop) {
          obs::mem_sub(obs::MemCategory::kBrokerRouting,
                       static_cast<std::int64_t>(sizeof(Subscription) +
                                                 s.topic.size()));
        }
        return drop;
      });
      break;
    case FrameKind::kPublish: {
      mark_frame(frame, "wire");
      if (config_.transport == TransportKind::kNio) {
        // Selector-based server: the event is picked up at the next
        // selector wakeup rather than by a blocked reader thread.
        const auto delay = static_cast<SimTime>(
            rng_.uniform(0.0, static_cast<double>(costs::kNioPollGranularity)));
        host_.sim().schedule_after(delay,
                                   [this, frame] { ingest_publish(frame); });
      } else {
        ingest_publish(frame);
      }
      break;
    }
    case FrameKind::kClientAck:
      // Session acknowledgement bookkeeping.
      host_.cpu().charge(costs::kUdpAckProcessing);
      break;
    case FrameKind::kBackfillRequest:
      handle_backfill_request(conn, frame);
      break;
    default:
      break;
  }
}

void Broker::on_udp_datagram(const net::Datagram& datagram) {
  if (crashed_) return;
  if (!datagram.payload.has_value()) return;
  const auto* maybe = std::any_cast<FramePtr>(&datagram.payload);
  if (maybe == nullptr || !*maybe) return;
  const FramePtr frame = *maybe;
  switch (frame->kind) {
    case FrameKind::kSubscribe: {
      if (!host_.heap().allocate(costs::kConnectionBufferBytes / 4)) {
        ++stats_.connections_refused;
        return;
      }
      ++stats_.connections_accepted;
      Subscription sub;
      sub.id = next_subscription_id_++;
      sub.topic = frame->topic;
      sub.is_queue = frame->is_queue;
      sub.selector = jms::Selector::parse(frame->selector);
      sub.ack_mode = frame->ack_mode;
      sub.via_udp = true;
      sub.udp = frame->reply_to;
      obs::mem_add(obs::MemCategory::kBrokerRouting,
                   static_cast<std::int64_t>(sizeof(Subscription) +
                                             sub.topic.size()));
      subscriptions_.push_back(std::move(sub));
      advertise_subscription(frame->topic);
      // Welcome datagram completes the client's registration.
      Frame welcome;
      welcome.kind = FrameKind::kDeliver;
      welcome.topic = "$welcome";
      lan_.send_datagram(config_.endpoint, frame->reply_to, kControlFrameBytes,
                         std::make_shared<const Frame>(welcome));
      break;
    }
    case FrameKind::kPublish:
      // JMS-over-UDP: Narada acknowledges each packet on its bookkeeping
      // cycle before releasing it downstream — the paper's explanation for
      // UDP's surprisingly high round-trip times.
      mark_frame(frame, "wire");
      udp_pending_.push_back(frame);
      break;
    case FrameKind::kClientAck:
      host_.cpu().charge(costs::kUdpAckProcessing);
      break;
    default:
      break;
  }
}

SimTime Broker::event_service_demand(std::int64_t bytes, int fanout) const {
  SimTime demand = costs::kBrokerServiceBase +
                   static_cast<SimTime>(static_cast<double>(bytes) *
                                        costs::kSerializePerByteNs) +
                   costs::kBrokerFanoutCost * fanout;
  return host_.loaded(demand, costs::kThreadLoadFactor);
}

void Broker::ingest_publish(const FramePtr& frame) {
  if (crashed_) return;  // e.g. a deferred NIO selector wakeup post-crash
  ++stats_.events_received;
  const bool aggregated = !frame->batch.empty();
  if (!aggregated && !frame->message) return;
  mark_frame(frame, "ingress");
  std::int64_t bytes = 0;
  std::size_t message_count = 1;
  if (aggregated) {
    message_count = frame->batch.size();
    for (const auto& message : frame->batch) bytes += message->wire_size();
  } else {
    bytes = frame->message->wire_size();
  }

  // Queued events hold heap while in flight (raises GC pressure under
  // load). Intentionally unchecked: a full heap degrades, not refuses.
  const std::int64_t transient = bytes * 3;
  (void)host_.heap().allocate(transient);

  // Count local matches first: fanout is part of the service demand. An
  // aggregated frame pays the dispatch base once but matches per message —
  // the amortisation that makes aggregation pay off.
  int fanout = 0;
  for (const auto& sub : subscriptions_) {
    if (sub.topic == frame->topic) ++fanout;
  }
  SimTime demand =
      event_service_demand(bytes, fanout * static_cast<int>(message_count));

  // Persistent delivery: force each event to stable storage before any
  // forwarding (the paper's tests ran non-persistent; the ablation bench
  // measures this alternative).
  const jms::MessagePtr& probe =
      aggregated ? frame->batch.front() : frame->message;
  if (probe->delivery_mode == jms::DeliveryMode::kPersistent) {
    demand += (costs::kPersistWriteBase +
               static_cast<SimTime>(static_cast<double>(bytes) *
                                    costs::kPersistPerByteNs)) *
              static_cast<SimTime>(message_count);
  }

  // Replay: stamp each message with the next per-topic sequence and retain
  // it under (topic, this broker) before dispatch, so a later gap replay
  // can serve it even if every subscriber is away right now.
  std::uint64_t first_seq = 0;
  if (config_.replay && !frame->is_queue) {
    auto& next = next_history_seq_[frame->topic];
    first_seq = next + 1;
    if (aggregated) {
      for (const auto& message : frame->batch) {
        retain(frame->topic, config_.broker_id, ++next, message);
      }
    } else {
      retain(frame->topic, config_.broker_id, ++next, frame->message);
    }
  }

  host_.cpu().execute(demand, [this, frame, transient, aggregated,
                               first_seq] {
    mark_frame(frame, "route_fanout");
    if (aggregated) {
      std::uint64_t seq = first_seq;
      for (const auto& message : frame->batch) {
        deliver_local(message, frame->topic, frame->is_queue,
                      first_seq > 0 ? config_.broker_id : -1, seq);
        if (seq > 0) ++seq;
      }
    } else {
      deliver_local(frame->message, frame->topic, frame->is_queue,
                    first_seq > 0 ? config_.broker_id : -1, first_seq);
    }
    disseminate(frame, first_seq);
    host_.heap().release(transient);
  });
}

void Broker::deliver_local(const jms::MessagePtr& message,
                           const std::string& topic, bool is_queue,
                           int origin, std::uint64_t seq) {
  // Zero-copy fan-out: one immutable frame shared by every local delivery.
  // Clients consuming a kDeliver read only kind/topic/message (acking is
  // governed by their own mode), and the wire size is field-independent,
  // so the per-subscriber Frame allocation was pure overhead.
  auto deliver = std::make_shared<const Frame>(
      Frame{FrameKind::kDeliver, topic, {}, jms::AcknowledgeMode::kAutoAcknowledge,
            0, message, -1, -1, {}});
  const std::int64_t wire = frame_wire_size(*deliver);
  auto send_to = [&](const Subscription& sub) {
    if (sub.via_udp) {
      lan_.send_datagram(config_.endpoint, sub.udp, wire, deliver);
    } else if (sub.conn && sub.conn->open()) {
      sub.conn->send(sub.conn_side, wire, deliver);
    }
    ++stats_.events_delivered;
  };

  if (!is_queue) {
    if (seq > 0) {
      // Replay-stamped fan-out: each subscriber gets its own frame carrying
      // (origin, seq) plus the per-subscription prev_seq chain — the price
      // of gap detection through selectors. Fan-out in the replay scenarios
      // is small, so giving up the shared frame here is cheap.
      for (auto& sub : subscriptions_) {
        if (sub.topic != topic || sub.is_queue) continue;
        if (!sub.selector.matches(*message)) continue;
        Frame stamped;
        stamped.kind = FrameKind::kDeliver;
        stamped.topic = topic;
        stamped.message = message;
        stamped.origin_broker = origin;
        stamped.history_seq = seq;
        stamped.prev_seq = sub.last_sent[origin];
        sub.last_sent[origin] = seq;
        auto frame = std::make_shared<const Frame>(std::move(stamped));
        const std::int64_t stamped_wire = frame_wire_size(*frame);
        if (sub.via_udp) {
          lan_.send_datagram(config_.endpoint, sub.udp, stamped_wire, frame);
        } else if (sub.conn && sub.conn->open()) {
          sub.conn->send(sub.conn_side, stamped_wire, frame);
        }
        ++stats_.events_delivered;
      }
      return;
    }
    for (const auto& sub : subscriptions_) {
      if (sub.topic != topic || sub.is_queue) continue;
      if (!sub.selector.matches(*message)) continue;
      send_to(sub);
    }
    return;
  }

  // PTP queue: exactly one matching receiver gets the message, rotating
  // round-robin so load spreads across competing receivers.
  std::vector<const Subscription*> matching;
  for (const auto& sub : subscriptions_) {
    if (sub.topic != topic || !sub.is_queue) continue;
    if (!sub.selector.matches(*message)) continue;
    matching.push_back(&sub);
  }
  if (matching.empty()) return;  // no receiver: dropped (no queue persistence)
  const std::size_t pick = queue_cursor_[topic]++ % matching.size();
  send_to(*matching[pick]);
}

void Broker::disseminate(const FramePtr& frame, std::uint64_t first_seq) {
  if (peers_.empty()) return;

  std::int64_t bytes = frame->message ? frame->message->wire_size() : 0;
  for (const auto& message : frame->batch) bytes += message->wire_size();
  const auto copy_cost = static_cast<SimTime>(static_cast<double>(bytes) *
                                              costs::kSerializePerByteNs);
  auto make_forward = [&](int final_broker) {
    Frame fwd;
    fwd.kind = FrameKind::kForward;
    fwd.topic = frame->topic;
    fwd.ack_mode = frame->ack_mode;
    fwd.message = frame->message;
    fwd.batch = frame->batch;
    fwd.origin_broker = config_.broker_id;
    fwd.final_broker = final_broker;
    fwd.history_seq = first_seq;
    return std::make_shared<const Frame>(std::move(fwd));
  };

  if (!config_.subscription_aware_routing) {
    // v1.1.3 behaviour: broadcast the event to every peer, whether or not a
    // subscriber lives there (the deficiency the paper observed as
    // "unnecessary data flow between nodes"). Each extra copy costs the
    // origin broker serialisation CPU and link bandwidth — but the frame
    // itself is identical for every peer, so one shared instance fans out.
    const FramePtr broadcast = make_forward(-1);
    for (const Peer& peer : peers_) {
      host_.cpu().charge(host_.loaded(copy_cost, costs::kThreadLoadFactor));
      send_to_peer(peer.id, broadcast);
    }
    return;
  }

  // Subscription-aware routing: an event travels only toward brokers that
  // advertised interest in the topic, along shortest paths in the map.
  // Advertisements flood (deduplicated), so every broker knows every
  // broker's topic interest.
  if (map_ == nullptr) return;
  for (int target = 0; target < map_->broker_count(); ++target) {
    if (target == config_.broker_id) continue;
    const auto it = remote_topics_.find(target);
    const bool interested =
        it != remote_topics_.end() && it->second.contains(frame->topic);
    if (!interested) continue;
    const int hop = map_->next_hop(config_.broker_id, target);
    if (hop < 0) continue;
    host_.cpu().charge(host_.loaded(copy_cost, costs::kThreadLoadFactor));
    send_to_peer(hop, make_forward(target));
  }
}

void Broker::ingest_forward(const FramePtr& frame) {
  ++stats_.events_from_peers;
  mark_frame(frame, "peer_in");
  // Replication: mirror the origin's retention under its own numbering, so
  // a client that fails over to this broker can still replay its gap.
  // append_at dedups, so repeated peer-replay sweeps cost nothing extra;
  // a frame every replica already has is also not re-delivered locally.
  const std::uint64_t first_seq =
      config_.replay && !frame->is_queue ? frame->history_seq : 0;
  std::vector<bool> fresh;
  if (first_seq > 0) {
    std::uint64_t seq = first_seq;
    if (!frame->batch.empty()) {
      fresh.reserve(frame->batch.size());
      for (const auto& message : frame->batch) {
        fresh.push_back(retain(frame->topic, frame->origin_broker, seq++,
                               message));
      }
    } else if (frame->message) {
      fresh.push_back(retain(frame->topic, frame->origin_broker, first_seq,
                             frame->message));
    }
  }
  // A relayed event costs the receiving broker real work: deserialise the
  // inter-broker frame, then run the same matching/dispatch pipeline as a
  // locally published event. Under the broadcast deficiency every broker
  // pays this for every event in the network — the "unnecessary data flow"
  // whose CPU cost the paper observed in Fig 6.
  std::int64_t bytes = frame->message ? frame->message->wire_size() : 0;
  for (const auto& message : frame->batch) bytes += message->wire_size();
  int fanout = 0;
  for (const auto& sub : subscriptions_) {
    if (sub.topic == frame->topic) ++fanout;
  }
  const std::int64_t transient = bytes * 3;
  (void)host_.heap().allocate(transient);
  // Dissemination runs on the broker's dedicated relay threads, so relay
  // work does not pay the connection-thread context-switch inflation —
  // otherwise two publishing brokers broadcasting at each other go
  // supercritical long before the paper's DBN did.
  const SimTime demand =
      costs::kBrokerForwardCost + costs::kBrokerServiceBase +
      static_cast<SimTime>(static_cast<double>(bytes) *
                           costs::kSerializePerByteNs) +
      costs::kBrokerFanoutCost * fanout;
  host_.cpu().execute(
      demand,
      [this, frame, transient, first_seq, fresh = std::move(fresh)] {
        mark_frame(frame, "relay_route");
        host_.heap().release(transient);
        if (frame->final_broker == -1 ||
            frame->final_broker == config_.broker_id) {
          const int origin = first_seq > 0 ? frame->origin_broker : -1;
          if (!frame->batch.empty()) {
            std::uint64_t seq = first_seq;
            for (std::size_t i = 0; i < frame->batch.size(); ++i) {
              if (fresh.empty() || fresh[i]) {
                deliver_local(frame->batch[i], frame->topic, frame->is_queue,
                              origin, seq);
              }
              if (seq > 0) ++seq;
            }
          } else if (fresh.empty() || fresh.front()) {
            deliver_local(frame->message, frame->topic, frame->is_queue,
                          origin, first_seq);
          }
          // Broadcast mode (-1) is terminal here: full mesh, single hop.
          return;
        }
        // Relay toward the routed destination.
        if (map_ == nullptr) return;
        const int hop = map_->next_hop(config_.broker_id, frame->final_broker);
        if (hop >= 0) send_to_peer(hop, frame);
      });
}

void Broker::send_to_peer(int peer_id, const FramePtr& frame) {
  const auto it = std::find_if(peers_.begin(), peers_.end(),
                               [&](const Peer& p) { return p.id == peer_id; });
  if (it == peers_.end() || !it->conn || !it->conn->open()) return;
  it->conn->send(it->side, frame_wire_size(*frame), frame);
  ++stats_.events_forwarded;
}

void Broker::advertise_subscription(const std::string& topic) {
  for (const Peer& peer : peers_) {
    if (!peer.conn || !peer.conn->open()) continue;
    auto ad = std::make_shared<const Frame>(Frame{
        FrameKind::kPeerSubscribe, topic, {}, {}, 0, nullptr,
        config_.broker_id, -1, {}});
    peer.conn->send(peer.side, kControlFrameBytes, ad);
  }
}

void Broker::add_peer(int peer_id, net::StreamConnectionPtr conn, int side) {
  const std::size_t index = peers_.size();
  peers_.push_back(Peer{peer_id, conn, side});
  conn->set_handler(side, [this, index](const net::Datagram& dg) {
    on_peer_frame(index, dg);
  });
}

void Broker::on_peer_frame(std::size_t peer_index,
                           const net::Datagram& datagram) {
  if (crashed_) return;  // peer traffic into a dead process is lost
  const auto frame = std::any_cast<FramePtr>(datagram.payload);
  switch (frame->kind) {
    case FrameKind::kPeerSubscribe: {
      // Deduplicate before flooding onward, so advertisements terminate in
      // cyclic topologies (the DBN mesh).
      const bool fresh =
          remote_topics_[frame->origin_broker].insert(frame->topic).second;
      if (!fresh) break;
      // Remote-topic interest is routing state too (one set node + chars).
      obs::mem_add(obs::MemCategory::kBrokerRouting,
                   static_cast<std::int64_t>(sizeof(std::string) + 48 +
                                             frame->topic.size()));
      const int from_id = peers_[peer_index].id;
      for (const Peer& other : peers_) {
        if (other.id == from_id || other.id == frame->origin_broker) continue;
        if (!other.conn || !other.conn->open()) continue;
        other.conn->send(other.side, kControlFrameBytes, frame);
      }
      break;
    }
    case FrameKind::kForward:
      ingest_forward(frame);
      break;
    case FrameKind::kBackfillRequest:
      handle_peer_backfill_request(peer_index, frame);
      break;
    default:
      break;
  }
}

bool Broker::retain(const std::string& topic, int origin, std::uint64_t seq,
                    const jms::MessagePtr& message) {
  auto [it, inserted] = history_.try_emplace(
      std::pair<std::string, int>{topic, origin},
      core::HistoryBuffer(config_.retention));
  const std::int64_t bytes = kFrameHeaderBytes + message->wire_size();
  return it->second.append_at(seq, message, bytes, host_.sim().now());
}

std::int64_t Broker::retained_bytes() const {
  std::int64_t total = 0;
  for (const auto& [key, buffer] : history_) total += buffer.stored_bytes();
  return total;
}

void Broker::handle_backfill_request(const net::StreamConnectionPtr& conn,
                                     const FramePtr& frame) {
  if (!config_.replay || crashed_) return;
  // Serve per requesting subscription: replay only what its selector
  // matches, then close with a per-origin summary so the client can
  // advance its cursors past anything retention already evicted.
  for (auto& sub : subscriptions_) {
    if (sub.conn != conn || sub.topic != frame->topic || sub.is_queue) {
      continue;
    }
    Frame reply;
    reply.kind = FrameKind::kBackfillReply;
    reply.topic = frame->topic;
    for (auto& [key, buffer] : history_) {
      if (key.first != frame->topic) continue;
      const int origin = key.second;
      std::uint64_t cursor = 0;
      for (const BackfillCursor& c : frame->cursors) {
        if (c.origin == origin) cursor = c.seq;
      }
      std::uint64_t served = 0;
      std::int64_t served_bytes = 0;
      const core::ReplayStats stats = buffer.replay_since(
          cursor, [&](std::uint64_t seq, const std::any& payload,
                      std::int64_t) {
            const auto* message = std::any_cast<jms::MessagePtr>(&payload);
            if (message == nullptr || !*message) return;
            if (!sub.selector.matches(**message)) return;
            Frame out;
            out.kind = FrameKind::kDeliver;
            out.topic = frame->topic;
            out.message = *message;
            out.origin_broker = origin;
            out.history_seq = seq;
            out.backfill = true;
            auto shared = std::make_shared<const Frame>(std::move(out));
            const std::int64_t wire = frame_wire_size(*shared);
            mark_frame(shared, "backfill");
            if (sub.conn && sub.conn->open()) {
              sub.conn->send(sub.conn_side, wire, shared);
            }
            ++served;
            served_bytes += wire;
            ++stats_.events_delivered;
          });
      if (served > 0) {
        // Re-serialising retained messages is real broker work.
        const SimTime demand =
            costs::kBrokerServiceBase +
            static_cast<SimTime>(static_cast<double>(served_bytes) *
                                 costs::kSerializePerByteNs);
        host_.cpu().charge(host_.loaded(demand, costs::kThreadLoadFactor));
      }
      stats_.backfill_msgs += served;
      stats_.backfill_bytes += served_bytes;
      reply.cursors.push_back(
          {origin, buffer.last_sequence(), stats.truncated});
    }
    auto shared = std::make_shared<const Frame>(std::move(reply));
    if (sub.conn && sub.conn->open()) {
      sub.conn->send(sub.conn_side, frame_wire_size(*shared), shared);
    }
  }
}

void Broker::handle_peer_backfill_request(std::size_t peer_index,
                                          const FramePtr& frame) {
  if (!config_.replay || crashed_) return;
  const Peer& peer = peers_[peer_index];
  if (!peer.conn || !peer.conn->open()) return;
  for (auto& [key, buffer] : history_) {
    if (key.first != frame->topic) continue;
    const int origin = key.second;
    std::uint64_t cursor = 0;
    for (const BackfillCursor& c : frame->cursors) {
      if (c.origin == origin) cursor = c.seq;
    }
    std::uint64_t served = 0;
    std::int64_t served_bytes = 0;
    buffer.replay_since(
        cursor,
        [&](std::uint64_t seq, const std::any& payload, std::int64_t) {
          const auto* message = std::any_cast<jms::MessagePtr>(&payload);
          if (message == nullptr || !*message) return;
          Frame out;
          out.kind = FrameKind::kForward;
          out.topic = frame->topic;
          out.message = *message;
          out.origin_broker = origin;
          out.final_broker = -1;
          out.history_seq = seq;
          out.backfill = true;
          auto shared = std::make_shared<const Frame>(std::move(out));
          const std::int64_t wire = frame_wire_size(*shared);
          mark_frame(shared, "backfill");
          peer.conn->send(peer.side, wire, shared);
          ++served;
          served_bytes += wire;
          ++stats_.events_forwarded;
        });
    if (served > 0) {
      const SimTime demand =
          costs::kBrokerServiceBase +
          static_cast<SimTime>(static_cast<double>(served_bytes) *
                               costs::kSerializePerByteNs);
      host_.cpu().charge(host_.loaded(demand, costs::kThreadLoadFactor));
    }
    stats_.backfill_msgs += served;
    stats_.backfill_bytes += served_bytes;
  }
}

void Broker::request_peer_backfill() {
  if (!config_.replay || crashed_ || peers_.empty()) return;
  // One request per topic we track, carrying our per-origin high
  // watermarks: peers replay only what we are missing.
  std::set<std::string> topics;
  for (const auto& [key, buffer] : history_) topics.insert(key.first);
  for (const auto& sub : subscriptions_) {
    if (!sub.is_queue) topics.insert(sub.topic);
  }
  for (const std::string& topic : topics) {
    Frame request;
    request.kind = FrameKind::kBackfillRequest;
    request.topic = topic;
    for (const auto& [key, buffer] : history_) {
      if (key.first != topic) continue;
      request.cursors.push_back({key.second, buffer.last_sequence(), false});
    }
    auto shared = std::make_shared<const Frame>(std::move(request));
    const std::int64_t wire = frame_wire_size(*shared);
    for (const Peer& peer : peers_) {
      if (!peer.conn || !peer.conn->open()) continue;
      peer.conn->send(peer.side, wire, shared);
    }
  }
}

}  // namespace gridmon::narada
