// Transport options for Narada client links (the paper's Table II axis).
#pragma once

#include <string>

namespace gridmon::narada {

enum class TransportKind {
  kTcp,  ///< blocking TCP, thread per connection
  kNio,  ///< non-blocking TCP, selector-based event loop
  kUdp,  ///< JMS over UDP: lossy datagrams + Narada's per-packet ack cycle
};

inline std::string to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kTcp:
      return "TCP";
    case TransportKind::kNio:
      return "NIO";
    case TransportKind::kUdp:
      return "UDP";
  }
  return "?";
}

}  // namespace gridmon::narada
