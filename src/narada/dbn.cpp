#include "narada/dbn.hpp"

#include <stdexcept>

namespace gridmon::narada {

Dbn::Dbn(cluster::Hydra& hydra, DbnConfig config)
    : hydra_(hydra),
      config_(std::move(config)),
      next_link_port_(static_cast<std::uint16_t>(config_.base_port + 1000)) {
  if (config_.broker_hosts.empty()) {
    throw std::invalid_argument("Dbn: needs at least one broker host");
  }
  for (std::size_t i = 0; i < config_.broker_hosts.size(); ++i) {
    map_.add_broker();
    BrokerConfig bc;
    bc.endpoint = net::Endpoint{config_.broker_hosts[i], config_.base_port};
    bc.transport = config_.transport;
    bc.broker_id = static_cast<int>(i);
    bc.subscription_aware_routing = config_.subscription_aware_routing;
    bc.replay = config_.replay;
    bc.retention = config_.retention;
    brokers_.push_back(std::make_unique<Broker>(
        hydra_.host(config_.broker_hosts[i]), hydra_.lan(), hydra_.streams(),
        bc));
    brokers_.back()->set_network_map(&map_);
  }

  const int n = broker_count();
  switch (config_.topology) {
    case DbnTopology::kFullMesh:
      for (int a = 0; a < n; ++a) {
        for (int b = a + 1; b < n; ++b) map_.add_link(a, b);
      }
      break;
    case DbnTopology::kChain:
      for (int a = 0; a + 1 < n; ++a) map_.add_link(a, a + 1);
      break;
    case DbnTopology::kStar:
      for (int b = 1; b < n; ++b) map_.add_link(0, b);
      break;
  }
}

net::Endpoint Dbn::broker_endpoint(int i) const {
  return net::Endpoint{config_.broker_hosts[static_cast<std::size_t>(i)],
                       config_.base_port};
}

void Dbn::start() {
  for (auto& broker : brokers_) broker->start();

  // Establish one stream per map link; the initiator is the lower id.
  const int n = broker_count();
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (!map_.linked(a, b)) continue;
      const net::Endpoint from{config_.broker_hosts[static_cast<std::size_t>(a)],
                               next_link_port_++};
      Broker* broker_a = brokers_[static_cast<std::size_t>(a)].get();
      Broker* broker_b = brokers_[static_cast<std::size_t>(b)].get();
      hydra_.streams().connect(
          from, broker_endpoint(b),
          [broker_a, broker_b, a, b](net::StreamConnectionPtr conn) {
            if (!conn) return;
            // NOTE: the acceptor side also sees this connection through its
            // client-accept path; the peer registration below overrides the
            // side-1 handler with the peer-frame handler.
            broker_a->add_peer(b, conn, 0);
            broker_b->add_peer(a, conn, 1);
          });
    }
  }
}

net::Endpoint Dbn::assign_publisher_broker() {
  const int n = broker_count();
  if (n == 1) return broker_endpoint(0);
  const int pubs = (n + 1) / 2;
  const int pick = next_pub_++ % pubs;
  return broker_endpoint(pick);
}

net::Endpoint Dbn::assign_subscriber_broker() {
  const int n = broker_count();
  if (n == 1) return broker_endpoint(0);
  const int pubs = (n + 1) / 2;
  const int subs = n - pubs;
  const int pick = pubs + (next_sub_++ % subs);
  return broker_endpoint(pick);
}

BrokerStats Dbn::total_stats() const {
  BrokerStats total;
  for (const auto& broker : brokers_) {
    const BrokerStats& s = broker->stats();
    total.connections_accepted += s.connections_accepted;
    total.connections_refused += s.connections_refused;
    total.events_received += s.events_received;
    total.events_delivered += s.events_delivered;
    total.events_forwarded += s.events_forwarded;
    total.events_from_peers += s.events_from_peers;
    total.udp_acks_sent += s.udp_acks_sent;
    total.crashes += s.crashes;
    total.backfill_msgs += s.backfill_msgs;
    total.backfill_bytes += s.backfill_bytes;
  }
  return total;
}

void Dbn::request_peer_backfill() {
  for (auto& broker : brokers_) broker->request_peer_backfill();
}

std::int64_t Dbn::retained_bytes() const {
  std::int64_t total = 0;
  for (const auto& broker : brokers_) total += broker->retained_bytes();
  return total;
}

}  // namespace gridmon::narada
