// Wire frames exchanged on Narada client links and broker-broker links.
// Carried as shared_ptr payloads through the simulated transports; the
// fields below are what the real protocol would serialise.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "jms/message.hpp"
#include "net/address.hpp"

namespace gridmon::narada {

enum class FrameKind {
  kSubscribe,
  kUnsubscribe,
  kPublish,
  kClientAck,
  kDeliver,
  kForward,        ///< broker → broker event relay
  kPeerSubscribe,  ///< broker → broker subscription advertisement
};

struct Frame {
  FrameKind kind;
  std::string topic;
  std::string selector;             ///< kSubscribe only
  jms::AcknowledgeMode ack_mode = jms::AcknowledgeMode::kAutoAcknowledge;
  std::uint64_t subscription_id = 0;
  jms::MessagePtr message;          ///< kPublish / kDeliver / kForward
  int origin_broker = -1;           ///< kForward: broker the event entered at
  int final_broker = -1;            ///< kForward: routed destination broker
  net::Endpoint reply_to;           ///< kSubscribe over UDP: delivery address
  /// JMS destination kind: topics fan out to every matching subscriber,
  /// queues (PTP) deliver each message to exactly one receiver.
  bool is_queue = false;
  /// Sender-side message aggregation (the RMM technique from the paper's
  /// related work, §IV): several publishes to the same destination carried
  /// in one wire frame. Non-empty only for aggregated kPublish frames.
  std::vector<jms::MessagePtr> batch;
};

using FramePtr = std::shared_ptr<const Frame>;

/// Control-frame wire sizes (subscription management is rare; only data
/// frames matter to the timing model, but sizes keep the accounting honest).
constexpr std::int64_t kControlFrameBytes = 96;
constexpr std::int64_t kFrameHeaderBytes = 32;

[[nodiscard]] inline std::int64_t frame_wire_size(const Frame& frame) {
  if (!frame.batch.empty()) {
    std::int64_t total = kFrameHeaderBytes;
    for (const auto& message : frame.batch) total += message->wire_size();
    return total;
  }
  if (frame.message) return kFrameHeaderBytes + frame.message->wire_size();
  return kControlFrameBytes;
}

}  // namespace gridmon::narada
