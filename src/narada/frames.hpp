// Wire frames exchanged on Narada client links and broker-broker links.
// Carried as shared_ptr payloads through the simulated transports; the
// fields below are what the real protocol would serialise.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "jms/message.hpp"
#include "net/address.hpp"

namespace gridmon::narada {

enum class FrameKind {
  kSubscribe,
  kUnsubscribe,
  kPublish,
  kClientAck,
  kDeliver,
  kForward,        ///< broker → broker event relay
  kPeerSubscribe,  ///< broker → broker subscription advertisement
  kBackfillRequest,  ///< gap replay ask (client → broker, broker → peer)
  kBackfillReply,    ///< per-origin served-upto summary closing a backfill
};

/// Per-origin replay cursor carried by backfill frames. In a request `seq`
/// is the newest sequence the requester has seen from that origin; in a
/// reply it is the newest sequence the server retains (`truncated` = part
/// of the requested gap was already evicted, i.e. honestly lost).
struct BackfillCursor {
  int origin = -1;
  std::uint64_t seq = 0;
  bool truncated = false;
};

struct Frame {
  FrameKind kind;
  std::string topic;
  std::string selector;             ///< kSubscribe only
  jms::AcknowledgeMode ack_mode = jms::AcknowledgeMode::kAutoAcknowledge;
  std::uint64_t subscription_id = 0;
  jms::MessagePtr message;          ///< kPublish / kDeliver / kForward
  int origin_broker = -1;           ///< kForward: broker the event entered at
  int final_broker = -1;            ///< kForward: routed destination broker
  net::Endpoint reply_to;           ///< kSubscribe over UDP: delivery address
  /// JMS destination kind: topics fan out to every matching subscriber,
  /// queues (PTP) deliver each message to exactly one receiver.
  bool is_queue = false;
  /// Sender-side message aggregation (the RMM technique from the paper's
  /// related work, §IV): several publishes to the same destination carried
  /// in one wire frame. Non-empty only for aggregated kPublish frames.
  std::vector<jms::MessagePtr> batch;
  // Backfill replication fields (all zero/empty unless the run enabled
  // replay, so replay-off frames — and their wire sizes — are unchanged).
  /// Per-(topic, origin) retention sequence stamped by the origin broker.
  std::uint64_t history_seq = 0;
  /// Sequence of the previous message this subscriber's selector matched
  /// (per origin): the delivery chain a client detects gaps from.
  std::uint64_t prev_seq = 0;
  /// True when the frame was served from retention, not the live stream.
  bool backfill = false;
  /// kBackfillRequest / kBackfillReply cursor list.
  std::vector<BackfillCursor> cursors;
};

using FramePtr = std::shared_ptr<const Frame>;

/// Control-frame wire sizes (subscription management is rare; only data
/// frames matter to the timing model, but sizes keep the accounting honest).
constexpr std::int64_t kControlFrameBytes = 96;
constexpr std::int64_t kFrameHeaderBytes = 32;

/// Serialised size of one BackfillCursor (origin + seq + flags).
constexpr std::int64_t kBackfillCursorBytes = 16;

[[nodiscard]] inline std::int64_t frame_wire_size(const Frame& frame) {
  // Replay-stamped frames pay for the extra header fields; replay-off
  // frames carry neither, keeping the classic wire sizes byte-identical.
  const std::int64_t replay =
      (frame.history_seq > 0 ? 16 : 0) +
      static_cast<std::int64_t>(frame.cursors.size()) * kBackfillCursorBytes;
  if (!frame.batch.empty()) {
    std::int64_t total = kFrameHeaderBytes + replay;
    for (const auto& message : frame.batch) total += message->wire_size();
    return total;
  }
  if (frame.message) {
    return kFrameHeaderBytes + frame.message->wire_size() + replay;
  }
  return kControlFrameBytes + replay;
}

}  // namespace gridmon::narada
