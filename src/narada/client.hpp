// Narada client link: the JMS provider endpoint an application holds.
//
// Each simulated power generator owns one client (one "concurrent
// connection" in the paper's terminology). A client connects to one broker
// over TCP, NIO or UDP, then publishes and/or subscribes. Client-library
// CPU costs (message assembly, serialisation, listener dispatch) are charged
// to the host the client runs on.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/host.hpp"
#include "jms/destination.hpp"
#include "narada/frames.hpp"
#include "narada/transport.hpp"
#include "net/stream.hpp"
#include "util/rng.hpp"

namespace gridmon::narada {

/// Client-side recovery knob: when an established broker link drops, retry
/// the connection with capped exponential backoff. Jitter is deterministic —
/// drawn from a named kernel RNG stream keyed by the client's endpoint — so
/// chaos runs stay a pure function of (scenario, duration, seed).
struct ReconnectPolicy {
  bool enabled = false;
  SimTime backoff_initial = units::milliseconds(500);
  SimTime backoff_max = units::seconds(8);
  double multiplier = 2.0;
  /// Each delay is stretched by uniform[0, jitter] of itself.
  double jitter = 0.2;
  int max_attempts = 0;  ///< 0 = keep trying until the run ends
  /// Fail-over: after every `rehome_after` consecutive failed attempts the
  /// client re-homes to the next fallback broker (round-robin through
  /// `fallbacks`). Empty keeps hammering the original broker — the classic
  /// single-broker recovery behaviour.
  std::vector<net::Endpoint> fallbacks;
  int rehome_after = 2;
};

class NaradaClient : public std::enable_shared_from_this<NaradaClient> {
 public:
  /// ok=false means the broker refused the connection (its OOM wall).
  using ReadyHandler = std::function<void(bool ok)>;
  /// `arrived_at` is when the frame reached this host (before_receiving in
  /// the paper's RTT decomposition); the callback itself runs at
  /// after_receiving.
  using DeliveryListener =
      std::function<void(const jms::MessagePtr&, SimTime arrived_at)>;
  /// `after_sending` is when the synchronous publish call returned.
  using SendCallback = std::function<void(SimTime after_sending)>;

  static std::shared_ptr<NaradaClient> create(cluster::Host& host,
                                              net::Lan& lan,
                                              net::StreamTransport& streams,
                                              net::Endpoint broker,
                                              net::Endpoint local,
                                              TransportKind transport);
  ~NaradaClient();

  /// Establish the link. Frames issued before readiness are queued.
  void connect(ReadyHandler on_ready);

  /// Register a topic subscription with a JMS selector.
  void subscribe(const std::string& topic, const std::string& selector,
                 jms::AcknowledgeMode ack_mode, DeliveryListener listener);

  /// Register as a PTP queue receiver: each message on the queue goes to
  /// exactly one receiver (round-robin among competing receivers).
  void receive_from_queue(const std::string& queue, const std::string& selector,
                          jms::AcknowledgeMode ack_mode,
                          DeliveryListener listener);

  /// Publish to a PTP queue instead of a topic.
  void publish_to_queue(jms::Message message, SendCallback on_sent = nullptr);

  /// Publish to a topic. Headers (JMSMessageID, JMSTimestamp) are stamped
  /// here, as the JMS provider does on send.
  void publish(jms::Message message, SendCallback on_sent = nullptr);

  /// CLIENT_ACKNOWLEDGE: acknowledge everything received so far.
  void acknowledge();

  /// Enable sender-side message aggregation (the RMM technique from the
  /// paper's related work): up to `batch_size` publishes are combined into
  /// one wire frame, flushed early after `max_delay`. batch_size <= 1
  /// disables aggregation (the default).
  void enable_aggregation(int batch_size,
                          SimTime max_delay = units::milliseconds(100));

  /// Install the recovery policy (call before or after connect). Without a
  /// policy a lost link is permanent: sends are silently dropped, the
  /// paper-faithful no-recovery baseline.
  void set_reconnect_policy(ReconnectPolicy policy);

  /// Enable reconnect gap replay. After a reconnect resubscribe (or a gap
  /// detected in the live delivery chain) the client waits `settle`, then
  /// asks its broker to backfill everything past its per-origin cursors.
  /// `max_retries` bounds follow-up rounds when a reply leaves gaps open.
  void set_replay(SimTime settle, int max_retries);

  [[nodiscard]] bool ready() const { return ready_; }
  [[nodiscard]] bool refused() const { return refused_; }
  [[nodiscard]] std::uint64_t published() const { return published_; }
  [[nodiscard]] std::uint64_t received() const { return received_; }
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }
  [[nodiscard]] std::uint64_t resubscribes() const { return resubscribes_; }
  [[nodiscard]] std::uint64_t rehomes() const { return rehomes_; }
  [[nodiscard]] std::uint64_t backfill_received() const {
    return backfill_received_;
  }
  [[nodiscard]] std::int64_t backfill_bytes() const { return backfill_bytes_; }
  [[nodiscard]] net::Endpoint local() const { return local_; }

 private:
  NaradaClient(cluster::Host& host, net::Lan& lan,
               net::StreamTransport& streams, net::Endpoint broker,
               net::Endpoint local, TransportKind transport);

  void send_frame(FramePtr frame);
  void on_frame(const net::Datagram& datagram);
  void handle_deliver(const FramePtr& frame, SimTime arrived_at);
  /// Invoke and clear the ready handler. One-shot semantics: keeping the
  /// handler alive held whatever the caller captured (typically its own
  /// shared_ptr to this client) for the client's whole lifetime — a
  /// reference cycle that leaked every client under ASan.
  void notify_ready(bool ok);
  void adopt_connection(net::StreamConnectionPtr conn);
  void schedule_reconnect();
  void attempt_reconnect();
  void resubscribe();
  /// Returns false when the stamped frame duplicates a sequence already
  /// delivered (the caller must drop it); otherwise records the delivery,
  /// advances the per-origin cursor and schedules a backfill on gaps.
  bool track_replay_delivery(const FramePtr& frame);
  void on_backfill_reply(const FramePtr& frame);
  void schedule_backfill();
  void request_backfill();

  cluster::Host& host_;
  net::Lan& lan_;
  net::StreamTransport& streams_;
  net::Endpoint broker_;
  net::Endpoint local_;
  TransportKind transport_;

  net::StreamConnectionPtr conn_;
  bool ready_ = false;
  bool refused_ = false;
  bool udp_bound_ = false;
  ReadyHandler on_ready_;
  std::deque<FramePtr> backlog_;

  std::string subscribed_topic_;
  std::string subscribed_selector_;
  bool subscribed_is_queue_ = false;
  bool has_subscription_ = false;
  jms::AcknowledgeMode ack_mode_ = jms::AcknowledgeMode::kAutoAcknowledge;
  DeliveryListener listener_;

  // Recovery state.
  ReconnectPolicy reconnect_;
  util::Rng reconnect_rng_;
  int reconnect_attempt_ = 0;
  bool reconnecting_ = false;
  std::uint64_t reconnects_ = 0;
  std::uint64_t resubscribes_ = 0;
  std::size_t fallback_index_ = 0;
  std::uint64_t rehomes_ = 0;

  // Replay (reconnect backfill) state.
  struct OriginCursor {
    std::uint64_t last = 0;         ///< newest contiguously-seen sequence
    std::set<std::uint64_t> ahead;  ///< delivered sequences beyond a gap
  };
  bool replay_enabled_ = false;
  SimTime replay_settle_ = 0;
  int replay_max_retries_ = 0;
  std::map<int, OriginCursor> cursors_;  ///< keyed by origin broker id
  bool backfill_pending_ = false;
  int backfill_round_ = 0;
  std::uint64_t backfill_received_ = 0;
  std::int64_t backfill_bytes_ = 0;

  std::uint64_t next_message_seq_ = 1;
  std::uint64_t published_ = 0;
  std::uint64_t received_ = 0;

  // Aggregation state.
  int aggregation_size_ = 1;
  SimTime aggregation_delay_ = 0;
  std::vector<std::pair<jms::MessagePtr, SendCallback>> aggregation_buffer_;
  sim::ScheduledEvent aggregation_flush_;

  void flush_aggregation();
};

}  // namespace gridmon::narada
