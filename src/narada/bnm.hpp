// Broker Network Map: the graph of brokers in a NaradaBrokering deployment.
//
// NaradaBrokering organises brokers into a network map and routes events to
// destinations over shortest paths (the paper: "a very efficient algorithm
// to find a shortest route"). This class is the map plus the routing
// computation (Dijkstra over link costs); the DBN uses it to decide next
// hops when subscription-aware routing is enabled.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace gridmon::narada {

class BrokerNetworkMap {
 public:
  static constexpr double kUnreachable =
      std::numeric_limits<double>::infinity();

  explicit BrokerNetworkMap(int broker_count = 0);

  /// Add a broker; returns its index.
  int add_broker();
  [[nodiscard]] int broker_count() const { return static_cast<int>(adjacency_.size()); }

  /// Add an undirected link with positive cost.
  void add_link(int a, int b, double cost = 1.0);
  [[nodiscard]] bool linked(int a, int b) const;

  /// Shortest-path distance (kUnreachable if disconnected).
  [[nodiscard]] double distance(int from, int to) const;

  /// First hop on a shortest path from `from` to `to`; -1 if unreachable
  /// or from == to.
  [[nodiscard]] int next_hop(int from, int to) const;

  /// Full shortest path including both endpoints; empty if unreachable.
  [[nodiscard]] std::vector<int> shortest_path(int from, int to) const;

  /// Neighbours of a broker.
  [[nodiscard]] std::vector<int> neighbours(int broker) const;

 private:
  struct Edge {
    int to;
    double cost;
  };
  void check(int broker) const;
  /// Dijkstra from `from`; fills dist and predecessor arrays.
  void dijkstra(int from, std::vector<double>& dist,
                std::vector<int>& prev) const;

  std::vector<std::vector<Edge>> adjacency_;
};

}  // namespace gridmon::narada
