#include "jms/message.hpp"

#include <stdexcept>

namespace gridmon::jms {

Value Message::property(const std::string& name) const {
  // Header pseudo-properties (JMS 1.1 §3.8.1.1).
  if (name == "JMSPriority") return static_cast<std::int32_t>(priority);
  if (name == "JMSTimestamp") return static_cast<std::int64_t>(timestamp);
  if (name == "JMSMessageID") {
    return message_id.empty() ? Value{NullValue{}} : Value{message_id};
  }
  if (name == "JMSCorrelationID") {
    return correlation_id.empty() ? Value{NullValue{}} : Value{correlation_id};
  }
  if (name == "JMSType") {
    return type.empty() ? Value{NullValue{}} : Value{type};
  }
  if (name == "JMSDeliveryMode") {
    return std::string(delivery_mode == DeliveryMode::kPersistent
                           ? "PERSISTENT"
                           : "NON_PERSISTENT");
  }
  const auto it = properties_.find(name);
  if (it == properties_.end()) return NullValue{};
  return it->second;
}

void Message::map_set(const std::string& name, Value value) {
  auto* map = std::get_if<MapBody>(&body);
  if (map == nullptr) {
    if (std::holds_alternative<std::monostate>(body)) {
      body = MapBody{};
      map = std::get_if<MapBody>(&body);
    } else {
      throw std::logic_error("Message::map_set on a non-map body");
    }
  }
  map->entries[name] = std::move(value);
}

Value Message::map_get(const std::string& name) const {
  const auto* map = std::get_if<MapBody>(&body);
  if (map == nullptr) {
    throw std::logic_error("Message::map_get on a non-map body");
  }
  const auto it = map->entries.find(name);
  if (it == map->entries.end()) return NullValue{};
  return it->second;
}

std::int64_t Message::wire_size() const {
  // Fixed headers: ids, timestamps, destination, flags.
  std::int64_t size = 96 + static_cast<std::int64_t>(destination.size() +
                                                     message_id.size() +
                                                     correlation_id.size());
  for (const auto& [name, value] : properties_) {
    size += static_cast<std::int64_t>(name.size()) + 2 + jms::wire_size(value);
  }
  struct BodySizer {
    std::int64_t operator()(const std::monostate&) const { return 0; }
    std::int64_t operator()(const MapBody& map) const {
      std::int64_t total = 4;
      for (const auto& [name, value] : map.entries) {
        total += static_cast<std::int64_t>(name.size()) + 2 +
                 jms::wire_size(value);
      }
      return total;
    }
    std::int64_t operator()(const TextBody& text) const {
      return 4 + static_cast<std::int64_t>(text.text.size());
    }
    std::int64_t operator()(const BytesBody& bytes) const {
      return 4 + bytes.size;
    }
  };
  return size + std::visit(BodySizer{}, body);
}

Message make_map_message(std::string destination,
                         std::map<std::string, Value> entries) {
  Message msg;
  msg.destination = std::move(destination);
  msg.body = MapBody{std::move(entries)};
  return msg;
}

Message make_text_message(std::string destination, std::string text) {
  Message msg;
  msg.destination = std::move(destination);
  msg.body = TextBody{std::move(text)};
  return msg;
}

}  // namespace gridmon::jms
