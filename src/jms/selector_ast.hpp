// Selector AST (internal to the jms library).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "jms/value.hpp"

namespace gridmon::jms::ast {

enum class BinaryOp {
  // arithmetic
  kAdd,
  kSub,
  kMul,
  kDiv,
  // comparison
  kEq,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
  // logic
  kAnd,
  kOr,
};

enum class UnaryOp { kNeg, kPos, kNot };

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Literal {
  Value value;
};

struct Identifier {
  std::string name;
};

struct Unary {
  UnaryOp op;
  ExprPtr operand;
};

struct Binary {
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

struct Between {
  bool negated;
  ExprPtr value;
  ExprPtr low;
  ExprPtr high;
};

struct InList {
  bool negated;
  ExprPtr value;
  std::vector<std::string> options;
};

struct Like {
  bool negated;
  ExprPtr value;
  std::string pattern;
  char escape = '\0';  ///< 0 = no escape character
};

struct IsNull {
  bool negated;
  ExprPtr value;
};

struct Expr {
  std::variant<Literal, Identifier, Unary, Binary, Between, InList, Like,
               IsNull>
      node;
};

template <typename Node>
ExprPtr make_expr(Node node) {
  return std::make_shared<const Expr>(Expr{std::move(node)});
}

}  // namespace gridmon::jms::ast
