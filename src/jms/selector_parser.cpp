// Recursive-descent parser for the selector grammar.
//
//   or_expr    := and_expr ( OR and_expr )*
//   and_expr   := not_expr ( AND not_expr )*
//   not_expr   := NOT not_expr | predicate
//   predicate  := arith [ cmp_op arith
//                       | [NOT] BETWEEN arith AND arith
//                       | [NOT] IN '(' string (',' string)* ')'
//                       | [NOT] LIKE string [ESCAPE string]
//                       | IS [NOT] NULL ]
//   arith      := term ( (+|-) term )*
//   term       := factor ( (*|/) factor )*
//   factor     := (+|-) factor | primary
//   primary    := literal | identifier | '(' or_expr ')'
#include "jms/selector.hpp"
#include "jms/selector_ast.hpp"
#include "jms/selector_lexer.hpp"

namespace gridmon::jms {
namespace {

using ast::BinaryOp;
using ast::ExprPtr;
using ast::UnaryOp;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ExprPtr parse() {
    ExprPtr expr = or_expr();
    expect(TokenKind::kEnd, "trailing input after expression");
    return expr;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_++]; }
  bool check(TokenKind kind) const { return peek().kind == kind; }
  bool accept(TokenKind kind) {
    if (check(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(TokenKind kind, const char* what) {
    if (!accept(kind)) {
      throw SelectorParseError(std::string("expected ") + what,
                               peek().position);
    }
  }

  ExprPtr or_expr() {
    ExprPtr lhs = and_expr();
    while (accept(TokenKind::kOr)) {
      lhs = ast::make_expr(ast::Binary{BinaryOp::kOr, lhs, and_expr()});
    }
    return lhs;
  }

  ExprPtr and_expr() {
    ExprPtr lhs = not_expr();
    while (accept(TokenKind::kAnd)) {
      lhs = ast::make_expr(ast::Binary{BinaryOp::kAnd, lhs, not_expr()});
    }
    return lhs;
  }

  ExprPtr not_expr() {
    if (accept(TokenKind::kNot)) {
      return ast::make_expr(ast::Unary{UnaryOp::kNot, not_expr()});
    }
    return predicate();
  }

  ExprPtr predicate() {
    ExprPtr lhs = arith();

    // Optional comparison.
    static constexpr struct {
      TokenKind token;
      BinaryOp op;
    } kComparisons[] = {
        {TokenKind::kEq, BinaryOp::kEq},  {TokenKind::kNeq, BinaryOp::kNeq},
        {TokenKind::kLt, BinaryOp::kLt},  {TokenKind::kLe, BinaryOp::kLe},
        {TokenKind::kGt, BinaryOp::kGt},  {TokenKind::kGe, BinaryOp::kGe},
    };
    for (const auto& cmp : kComparisons) {
      if (accept(cmp.token)) {
        return ast::make_expr(ast::Binary{cmp.op, lhs, arith()});
      }
    }

    bool negated = false;
    if (check(TokenKind::kNot)) {
      // NOT here must be followed by BETWEEN/IN/LIKE.
      const Token& next = tokens_[pos_ + 1];
      if (next.kind == TokenKind::kBetween || next.kind == TokenKind::kIn ||
          next.kind == TokenKind::kLike) {
        ++pos_;
        negated = true;
      } else {
        return lhs;
      }
    }

    if (accept(TokenKind::kBetween)) {
      ExprPtr low = arith();
      expect(TokenKind::kAnd, "AND in BETWEEN");
      ExprPtr high = arith();
      return ast::make_expr(ast::Between{negated, lhs, low, high});
    }
    if (accept(TokenKind::kIn)) {
      expect(TokenKind::kLParen, "'(' after IN");
      std::vector<std::string> options;
      do {
        if (!check(TokenKind::kStringLiteral)) {
          throw SelectorParseError("IN list elements must be string literals",
                                   peek().position);
        }
        options.push_back(advance().text);
      } while (accept(TokenKind::kComma));
      expect(TokenKind::kRParen, "')' after IN list");
      return ast::make_expr(ast::InList{negated, lhs, std::move(options)});
    }
    if (accept(TokenKind::kLike)) {
      if (!check(TokenKind::kStringLiteral)) {
        throw SelectorParseError("LIKE pattern must be a string literal",
                                 peek().position);
      }
      std::string pattern = advance().text;
      char escape = '\0';
      if (accept(TokenKind::kEscape)) {
        if (!check(TokenKind::kStringLiteral) || peek().text.size() != 1) {
          throw SelectorParseError(
              "ESCAPE must be a single-character string literal",
              peek().position);
        }
        escape = advance().text[0];
      }
      return ast::make_expr(
          ast::Like{negated, lhs, std::move(pattern), escape});
    }
    if (accept(TokenKind::kIs)) {
      const bool is_not = accept(TokenKind::kNot);
      expect(TokenKind::kNull, "NULL after IS");
      return ast::make_expr(ast::IsNull{is_not, lhs});
    }
    if (negated) {
      throw SelectorParseError("expected BETWEEN, IN or LIKE after NOT",
                               peek().position);
    }
    return lhs;
  }

  ExprPtr arith() {
    ExprPtr lhs = term();
    for (;;) {
      if (accept(TokenKind::kPlus)) {
        lhs = ast::make_expr(ast::Binary{BinaryOp::kAdd, lhs, term()});
      } else if (accept(TokenKind::kMinus)) {
        lhs = ast::make_expr(ast::Binary{BinaryOp::kSub, lhs, term()});
      } else {
        return lhs;
      }
    }
  }

  ExprPtr term() {
    ExprPtr lhs = factor();
    for (;;) {
      if (accept(TokenKind::kStar)) {
        lhs = ast::make_expr(ast::Binary{BinaryOp::kMul, lhs, factor()});
      } else if (accept(TokenKind::kSlash)) {
        lhs = ast::make_expr(ast::Binary{BinaryOp::kDiv, lhs, factor()});
      } else {
        return lhs;
      }
    }
  }

  ExprPtr factor() {
    if (accept(TokenKind::kMinus)) {
      return ast::make_expr(ast::Unary{UnaryOp::kNeg, factor()});
    }
    if (accept(TokenKind::kPlus)) {
      return ast::make_expr(ast::Unary{UnaryOp::kPos, factor()});
    }
    return primary();
  }

  ExprPtr primary() {
    const Token& tok = peek();
    switch (tok.kind) {
      case TokenKind::kIntLiteral:
        advance();
        return ast::make_expr(ast::Literal{Value{tok.int_value}});
      case TokenKind::kDoubleLiteral:
        advance();
        return ast::make_expr(ast::Literal{Value{tok.double_value}});
      case TokenKind::kStringLiteral:
        advance();
        return ast::make_expr(ast::Literal{Value{tok.text}});
      case TokenKind::kTrue:
        advance();
        return ast::make_expr(ast::Literal{Value{true}});
      case TokenKind::kFalse:
        advance();
        return ast::make_expr(ast::Literal{Value{false}});
      case TokenKind::kIdentifier:
        advance();
        return ast::make_expr(ast::Identifier{tok.text});
      case TokenKind::kLParen: {
        advance();
        ExprPtr inner = or_expr();
        expect(TokenKind::kRParen, "')'");
        return inner;
      }
      default:
        throw SelectorParseError("expected literal, identifier or '('",
                                 tok.position);
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

bool is_blank(std::string_view text) {
  for (char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

Selector Selector::parse(std::string_view text) {
  Selector selector;
  selector.text_ = std::string(text);
  if (is_blank(text)) return selector;  // match-everything
  Parser parser(tokenize_selector(text));
  selector.root_ = parser.parse();
  return selector;
}

}  // namespace gridmon::jms
