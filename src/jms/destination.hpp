// JMS destinations and the client-facing pub/sub interfaces.
//
// These are the vendor-neutral JMS abstractions the paper's test programs
// code against; src/narada provides the concrete provider.
#pragma once

#include <functional>
#include <string>

#include "jms/message.hpp"

namespace gridmon::jms {

enum class DestinationKind { kTopic, kQueue };

struct Destination {
  DestinationKind kind = DestinationKind::kTopic;
  std::string name;

  friend bool operator==(const Destination&, const Destination&) = default;
};

inline Destination topic(std::string name) {
  return Destination{DestinationKind::kTopic, std::move(name)};
}
inline Destination queue(std::string name) {
  return Destination{DestinationKind::kQueue, std::move(name)};
}

/// Asynchronous delivery callback (JMS MessageListener::onMessage).
using MessageListener = std::function<void(const MessagePtr&)>;

/// Producer half of a session (JMS TopicPublisher).
class TopicPublisher {
 public:
  virtual ~TopicPublisher() = default;
  /// Publish `message` to this publisher's topic. The provider stamps
  /// JMSMessageID and JMSTimestamp.
  virtual void publish(Message message) = 0;
  [[nodiscard]] virtual const Destination& destination() const = 0;
};

/// Consumer half of a session (JMS TopicSubscriber with a listener).
class TopicSubscriber {
 public:
  virtual ~TopicSubscriber() = default;
  virtual void set_listener(MessageListener listener) = 0;
  /// CLIENT_ACKNOWLEDGE mode: acknowledge all messages received so far.
  virtual void acknowledge() = 0;
  [[nodiscard]] virtual const Destination& destination() const = 0;
};

}  // namespace gridmon::jms
