#include "jms/selector_lexer.hpp"

#include <cctype>
#include <charconv>
#include <unordered_map>

#include "jms/selector.hpp"

namespace gridmon::jms {
namespace {

const std::unordered_map<std::string, TokenKind>& keywords() {
  static const std::unordered_map<std::string, TokenKind> kMap = {
      {"AND", TokenKind::kAnd},     {"OR", TokenKind::kOr},
      {"NOT", TokenKind::kNot},     {"BETWEEN", TokenKind::kBetween},
      {"IN", TokenKind::kIn},       {"LIKE", TokenKind::kLike},
      {"ESCAPE", TokenKind::kEscape}, {"IS", TokenKind::kIs},
      {"NULL", TokenKind::kNull},   {"TRUE", TokenKind::kTrue},
      {"FALSE", TokenKind::kFalse},
  };
  return kMap;
}

std::string upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}
bool ident_part(char c) {
  return ident_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '.';
}

}  // namespace

std::vector<Token> tokenize_selector(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto push = [&](TokenKind kind, std::size_t at, std::string text = {}) {
    Token tok;
    tok.kind = kind;
    tok.text = std::move(text);
    tok.position = at;
    tokens.push_back(std::move(tok));
  };

  while (i < n) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t start = i;

    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_part(source[j])) ++j;
      const std::string_view word = source.substr(i, j - i);
      const auto kw = keywords().find(upper(word));
      if (kw != keywords().end()) {
        push(kw->second, start);
      } else {
        push(TokenKind::kIdentifier, start, std::string(word));
      }
      i = j;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      std::size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) ++j;
      if (j < n && source[j] == '.') {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) ++j;
      }
      if (j < n && (source[j] == 'e' || source[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < n && (source[k] == '+' || source[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(source[k]))) {
          is_double = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) ++j;
        }
      }
      const std::string_view num = source.substr(i, j - i);
      Token tok;
      tok.position = start;
      if (is_double) {
        tok.kind = TokenKind::kDoubleLiteral;
        tok.double_value = std::stod(std::string(num));
      } else {
        tok.kind = TokenKind::kIntLiteral;
        const auto result = std::from_chars(num.data(), num.data() + num.size(),
                                            tok.int_value);
        if (result.ec != std::errc{}) {
          throw SelectorParseError("integer literal out of range", start);
        }
      }
      tokens.push_back(std::move(tok));
      i = j;
      continue;
    }

    if (c == '\'') {
      // SQL string literal; '' is an escaped quote.
      std::string text;
      std::size_t j = i + 1;
      for (;;) {
        if (j >= n) {
          throw SelectorParseError("unterminated string literal", start);
        }
        if (source[j] == '\'') {
          if (j + 1 < n && source[j + 1] == '\'') {
            text += '\'';
            j += 2;
            continue;
          }
          ++j;
          break;
        }
        text += source[j];
        ++j;
      }
      push(TokenKind::kStringLiteral, start, std::move(text));
      i = j;
      continue;
    }

    switch (c) {
      case '=':
        push(TokenKind::kEq, start);
        ++i;
        continue;
      case '<':
        if (i + 1 < n && source[i + 1] == '>') {
          push(TokenKind::kNeq, start);
          i += 2;
        } else if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kLe, start);
          i += 2;
        } else {
          push(TokenKind::kLt, start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kGe, start);
          i += 2;
        } else {
          push(TokenKind::kGt, start);
          ++i;
        }
        continue;
      case '+':
        push(TokenKind::kPlus, start);
        ++i;
        continue;
      case '-':
        push(TokenKind::kMinus, start);
        ++i;
        continue;
      case '*':
        push(TokenKind::kStar, start);
        ++i;
        continue;
      case '/':
        push(TokenKind::kSlash, start);
        ++i;
        continue;
      case '(':
        push(TokenKind::kLParen, start);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, start);
        ++i;
        continue;
      case ',':
        push(TokenKind::kComma, start);
        ++i;
        continue;
      default:
        throw SelectorParseError(std::string("unexpected character '") + c +
                                     "'",
                                 start);
    }
  }
  push(TokenKind::kEnd, n);
  return tokens;
}

}  // namespace gridmon::jms
