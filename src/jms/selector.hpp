// JMS message selectors (JMS 1.1 §3.8): a SQL-92 conditional-expression
// subset evaluated against a message's headers and properties.
//
// Supported, per the spec: identifiers; exact/approximate numeric, string
// and boolean literals; comparison operators =, <>, <, <=, >, >= (string and
// boolean comparison limited to = and <>); arithmetic + - * / with unary
// sign; logical AND/OR/NOT with SQL three-valued logic; BETWEEN ... AND ...;
// IN (...); LIKE with % and _ wildcards and optional ESCAPE; IS [NOT] NULL.
//
// The paper's subscriber uses the selector "id<10000" — present here not as
// a stub but as one expression in a full grammar, because selector
// evaluation cost is part of the broker service-time model.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "jms/message.hpp"

namespace gridmon::jms {

/// SQL three-valued logic.
enum class Tri { kFalse, kTrue, kUnknown };

[[nodiscard]] constexpr Tri tri_not(Tri t) {
  switch (t) {
    case Tri::kTrue:
      return Tri::kFalse;
    case Tri::kFalse:
      return Tri::kTrue;
    case Tri::kUnknown:
      return Tri::kUnknown;
  }
  return Tri::kUnknown;
}
[[nodiscard]] constexpr Tri tri_and(Tri a, Tri b) {
  if (a == Tri::kFalse || b == Tri::kFalse) return Tri::kFalse;
  if (a == Tri::kUnknown || b == Tri::kUnknown) return Tri::kUnknown;
  return Tri::kTrue;
}
[[nodiscard]] constexpr Tri tri_or(Tri a, Tri b) {
  if (a == Tri::kTrue || b == Tri::kTrue) return Tri::kTrue;
  if (a == Tri::kUnknown || b == Tri::kUnknown) return Tri::kUnknown;
  return Tri::kFalse;
}

class SelectorParseError : public std::runtime_error {
 public:
  SelectorParseError(const std::string& what, std::size_t position)
      : std::runtime_error(what + " (at offset " + std::to_string(position) +
                           ")"),
        position_(position) {}
  [[nodiscard]] std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

namespace ast {
struct Expr;
}

class Selector {
 public:
  /// Empty/blank text yields a match-everything selector, as in JMS.
  static Selector parse(std::string_view text);

  Selector() = default;

  /// JMS match semantics: only a TRUE result matches.
  [[nodiscard]] bool matches(const Message& message) const {
    return evaluate(message) == Tri::kTrue;
  }

  /// Full three-valued result, exposed for tests.
  [[nodiscard]] Tri evaluate(const Message& message) const;

  [[nodiscard]] const std::string& text() const { return text_; }
  [[nodiscard]] bool trivial() const { return root_ == nullptr; }

 private:
  std::string text_;
  std::shared_ptr<const ast::Expr> root_;
};

}  // namespace gridmon::jms
