// JMS typed values.
//
// JMS properties and MapMessage entries are typed primitives. The variant
// below covers the types the paper's workloads use (plus byte/short folded
// into int32). Numeric comparison follows JMS selector rules: any numeric
// type compares with any other after promotion to the wider representation.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace gridmon::jms {

struct NullValue {
  friend bool operator==(const NullValue&, const NullValue&) = default;
};

using Value = std::variant<NullValue, bool, std::int32_t, std::int64_t, float,
                           double, std::string>;

[[nodiscard]] constexpr bool is_null(const Value& v) {
  return std::holds_alternative<NullValue>(v);
}
[[nodiscard]] constexpr bool is_bool(const Value& v) {
  return std::holds_alternative<bool>(v);
}
[[nodiscard]] constexpr bool is_string(const Value& v) {
  return std::holds_alternative<std::string>(v);
}
[[nodiscard]] constexpr bool is_numeric(const Value& v) {
  return std::holds_alternative<std::int32_t>(v) ||
         std::holds_alternative<std::int64_t>(v) ||
         std::holds_alternative<float>(v) || std::holds_alternative<double>(v);
}
[[nodiscard]] constexpr bool is_integral(const Value& v) {
  return std::holds_alternative<std::int32_t>(v) ||
         std::holds_alternative<std::int64_t>(v);
}

/// Numeric value as double (requires is_numeric).
[[nodiscard]] double as_double(const Value& v);

/// Numeric value as int64 (requires is_integral).
[[nodiscard]] std::int64_t as_int64(const Value& v);

/// Approximate serialised size of the value on the wire, in bytes.
[[nodiscard]] std::int64_t wire_size(const Value& v);

/// Human-readable rendering (used in logs and test diagnostics).
[[nodiscard]] std::string to_string(const Value& v);

}  // namespace gridmon::jms
