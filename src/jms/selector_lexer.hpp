// Selector tokenizer (internal to the jms library).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gridmon::jms {

enum class TokenKind {
  kIdentifier,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  // keywords
  kAnd,
  kOr,
  kNot,
  kBetween,
  kIn,
  kLike,
  kEscape,
  kIs,
  kNull,
  kTrue,
  kFalse,
  // operators / punctuation
  kEq,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kLParen,
  kRParen,
  kComma,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;       ///< identifier name or string literal contents
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::size_t position = 0;  ///< offset in the selector source
};

/// Tokenizes the whole selector. Throws SelectorParseError on bad input.
std::vector<Token> tokenize_selector(std::string_view source);

}  // namespace gridmon::jms
