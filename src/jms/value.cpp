#include "jms/value.hpp"

#include <sstream>
#include <stdexcept>

namespace gridmon::jms {

double as_double(const Value& v) {
  if (const auto* i = std::get_if<std::int32_t>(&v)) return *i;
  if (const auto* l = std::get_if<std::int64_t>(&v)) return static_cast<double>(*l);
  if (const auto* f = std::get_if<float>(&v)) return *f;
  if (const auto* d = std::get_if<double>(&v)) return *d;
  throw std::logic_error("jms::as_double: value is not numeric");
}

std::int64_t as_int64(const Value& v) {
  if (const auto* i = std::get_if<std::int32_t>(&v)) return *i;
  if (const auto* l = std::get_if<std::int64_t>(&v)) return *l;
  throw std::logic_error("jms::as_int64: value is not integral");
}

std::int64_t wire_size(const Value& v) {
  struct Sizer {
    std::int64_t operator()(const NullValue&) const { return 1; }
    std::int64_t operator()(bool) const { return 1; }
    std::int64_t operator()(std::int32_t) const { return 4; }
    std::int64_t operator()(std::int64_t) const { return 8; }
    std::int64_t operator()(float) const { return 4; }
    std::int64_t operator()(double) const { return 8; }
    std::int64_t operator()(const std::string& s) const {
      return 2 + static_cast<std::int64_t>(s.size());
    }
  };
  return std::visit(Sizer{}, v);
}

std::string to_string(const Value& v) {
  struct Printer {
    std::string operator()(const NullValue&) const { return "NULL"; }
    std::string operator()(bool b) const { return b ? "TRUE" : "FALSE"; }
    std::string operator()(std::int32_t i) const { return std::to_string(i); }
    std::string operator()(std::int64_t l) const { return std::to_string(l); }
    std::string operator()(float f) const {
      std::ostringstream out;
      out << f;
      return out.str();
    }
    std::string operator()(double d) const {
      std::ostringstream out;
      out << d;
      return out.str();
    }
    std::string operator()(const std::string& s) const { return "'" + s + "'"; }
  };
  return std::visit(Printer{}, v);
}

}  // namespace gridmon::jms
