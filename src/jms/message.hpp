// JMS 1.1-style messages.
//
// A Message carries standard headers (JMSMessageID, JMSTimestamp,
// JMSDestination, JMSDeliveryMode, JMSPriority, ...), application-set
// properties (visible to selectors), and a typed body. The paper's workload
// uses MapMessage bodies with the exact field mix it describes (2 int,
// 5 float, 2 long, 3 double, 4 string).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "jms/value.hpp"
#include "util/units.hpp"

namespace gridmon::jms {

enum class DeliveryMode { kNonPersistent, kPersistent };

enum class AcknowledgeMode {
  kAutoAcknowledge,
  kClientAcknowledge,
  kDupsOkAcknowledge,
};

/// MapMessage body: name → typed value.
struct MapBody {
  std::map<std::string, Value> entries;
};

/// TextMessage body.
struct TextBody {
  std::string text;
};

/// BytesMessage body; contents are opaque, only the size matters.
struct BytesBody {
  std::int64_t size = 0;
};

using Body = std::variant<std::monostate, MapBody, TextBody, BytesBody>;

class Message {
 public:
  Message() = default;

  // --- headers ---
  std::string message_id;
  std::string destination;  ///< topic or queue name
  SimTime timestamp = 0;    ///< JMSTimestamp: set on send
  DeliveryMode delivery_mode = DeliveryMode::kNonPersistent;
  int priority = 4;  ///< JMS default priority
  std::string correlation_id;
  std::string type;
  SimTime expiration = 0;  ///< 0 = never

  // --- properties (selector-visible) ---
  void set_property(const std::string& name, Value value) {
    properties_[name] = std::move(value);
  }
  /// Property lookup used by selectors: missing → NULL, plus the JMSX /
  /// JMS header pseudo-properties selectors may reference.
  [[nodiscard]] Value property(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, Value>& properties() const {
    return properties_;
  }

  // --- body ---
  Body body;

  [[nodiscard]] bool is_map() const { return std::holds_alternative<MapBody>(body); }
  [[nodiscard]] bool is_text() const { return std::holds_alternative<TextBody>(body); }

  /// MapMessage accessors (throw if the body is not a map).
  void map_set(const std::string& name, Value value);
  [[nodiscard]] Value map_get(const std::string& name) const;

  /// Approximate serialised size: headers + properties + body.
  [[nodiscard]] std::int64_t wire_size() const;

 private:
  std::map<std::string, Value> properties_;
};

using MessagePtr = std::shared_ptr<const Message>;

/// Convenience builders.
Message make_map_message(std::string destination,
                         std::map<std::string, Value> entries);
Message make_text_message(std::string destination, std::string text);

}  // namespace gridmon::jms
