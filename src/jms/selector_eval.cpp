// Selector evaluation with SQL three-valued logic.
//
// Sub-expressions evaluate to a jms::Value; NullValue doubles as SQL
// UNKNOWN. Type mismatches (comparing a string with a number, arithmetic on
// a boolean, LIKE on a non-string) yield UNKNOWN rather than an error, as
// the JMS spec requires for selectors.
#include "jms/selector.hpp"
#include "jms/selector_ast.hpp"

namespace gridmon::jms {
namespace {

using ast::BinaryOp;
using ast::Expr;
using ast::UnaryOp;

Tri value_to_tri(const Value& v) {
  if (const auto* b = std::get_if<bool>(&v)) {
    return *b ? Tri::kTrue : Tri::kFalse;
  }
  return Tri::kUnknown;
}

Value tri_to_value(Tri t) {
  switch (t) {
    case Tri::kTrue:
      return true;
    case Tri::kFalse:
      return false;
    case Tri::kUnknown:
      return NullValue{};
  }
  return NullValue{};
}

/// SQL LIKE with % (any run) and _ (any one char), honouring an escape char.
bool like_match(const std::string& text, const std::string& pattern,
                char escape) {
  const std::size_t tn = text.size();
  const std::size_t pn = pattern.size();
  // Iterative matcher with backtracking over the last '%'.
  std::size_t ti = 0;
  std::size_t pi = 0;
  std::size_t star_pi = std::string::npos;
  std::size_t star_ti = 0;
  while (ti < tn) {
    bool literal = false;
    char pc = '\0';
    if (pi < pn) {
      pc = pattern[pi];
      if (escape != '\0' && pc == escape && pi + 1 < pn) {
        literal = true;
        pc = pattern[pi + 1];
      }
    }
    if (pi < pn && !literal && pc == '%') {
      star_pi = pi++;
      star_ti = ti;
      continue;
    }
    if (pi < pn && ((literal && text[ti] == pc) ||
                    (!literal && (pc == '_' || text[ti] == pc)))) {
      pi += literal ? 2 : 1;
      ++ti;
      continue;
    }
    if (star_pi != std::string::npos) {
      pi = star_pi + 1;
      ti = ++star_ti;
      continue;
    }
    return false;
  }
  // Remaining pattern must be all bare '%' (an escape introduces a literal
  // that has nothing left to match).
  while (pi < pn) {
    if (escape != '\0' && pattern[pi] == escape) return false;
    if (pattern[pi] != '%') return false;
    ++pi;
  }
  return true;
}

class Evaluator {
 public:
  explicit Evaluator(const Message& message) : message_(message) {}

  Value eval(const Expr& expr) const {
    return std::visit([this](const auto& node) { return eval_node(node); },
                      expr.node);
  }

 private:
  Value eval_node(const ast::Literal& lit) const { return lit.value; }

  Value eval_node(const ast::Identifier& ident) const {
    return message_.property(ident.name);
  }

  Value eval_node(const ast::Unary& unary) const {
    const Value operand = eval(*unary.operand);
    switch (unary.op) {
      case UnaryOp::kNot:
        return tri_to_value(tri_not(value_to_tri(operand)));
      case UnaryOp::kNeg:
        if (is_integral(operand)) return -as_int64(operand);
        if (is_numeric(operand)) return -as_double(operand);
        return NullValue{};
      case UnaryOp::kPos:
        if (is_numeric(operand)) return operand;
        return NullValue{};
    }
    return NullValue{};
  }

  Value eval_node(const ast::Binary& binary) const {
    // Logic short-circuits per three-valued truth tables.
    if (binary.op == BinaryOp::kAnd) {
      const Tri lhs = value_to_tri(eval(*binary.lhs));
      if (lhs == Tri::kFalse) return false;
      return tri_to_value(tri_and(lhs, value_to_tri(eval(*binary.rhs))));
    }
    if (binary.op == BinaryOp::kOr) {
      const Tri lhs = value_to_tri(eval(*binary.lhs));
      if (lhs == Tri::kTrue) return true;
      return tri_to_value(tri_or(lhs, value_to_tri(eval(*binary.rhs))));
    }

    const Value lhs = eval(*binary.lhs);
    const Value rhs = eval(*binary.rhs);
    if (is_null(lhs) || is_null(rhs)) return NullValue{};

    switch (binary.op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
        return arithmetic(binary.op, lhs, rhs);
      case BinaryOp::kEq:
      case BinaryOp::kNeq:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        return tri_to_value(compare(binary.op, lhs, rhs));
      default:
        return NullValue{};
    }
  }

  Value eval_node(const ast::Between& between) const {
    const Value value = eval(*between.value);
    const Value low = eval(*between.low);
    const Value high = eval(*between.high);
    if (is_null(value) || is_null(low) || is_null(high)) return NullValue{};
    const Tri result = tri_and(compare(BinaryOp::kGe, value, low),
                               compare(BinaryOp::kLe, value, high));
    return tri_to_value(between.negated ? tri_not(result) : result);
  }

  Value eval_node(const ast::InList& in) const {
    const Value value = eval(*in.value);
    if (is_null(value)) return NullValue{};
    const auto* str = std::get_if<std::string>(&value);
    if (str == nullptr) return NullValue{};
    bool found = false;
    for (const auto& option : in.options) {
      if (option == *str) {
        found = true;
        break;
      }
    }
    return in.negated ? !found : found;
  }

  Value eval_node(const ast::Like& like) const {
    const Value value = eval(*like.value);
    if (is_null(value)) return NullValue{};
    const auto* str = std::get_if<std::string>(&value);
    if (str == nullptr) return NullValue{};
    const bool matched = like_match(*str, like.pattern, like.escape);
    return like.negated ? !matched : matched;
  }

  Value eval_node(const ast::IsNull& isnull) const {
    const bool null = is_null(eval(*isnull.value));
    return isnull.negated ? !null : null;
  }

  static Value arithmetic(BinaryOp op, const Value& lhs, const Value& rhs) {
    if (!is_numeric(lhs) || !is_numeric(rhs)) return NullValue{};
    if (is_integral(lhs) && is_integral(rhs)) {
      const std::int64_t a = as_int64(lhs);
      const std::int64_t b = as_int64(rhs);
      switch (op) {
        case BinaryOp::kAdd:
          return a + b;
        case BinaryOp::kSub:
          return a - b;
        case BinaryOp::kMul:
          return a * b;
        case BinaryOp::kDiv:
          if (b == 0) return NullValue{};  // SQL: error → UNKNOWN
          return a / b;
        default:
          return NullValue{};
      }
    }
    const double a = as_double(lhs);
    const double b = as_double(rhs);
    switch (op) {
      case BinaryOp::kAdd:
        return a + b;
      case BinaryOp::kSub:
        return a - b;
      case BinaryOp::kMul:
        return a * b;
      case BinaryOp::kDiv:
        return a / b;  // IEEE semantics, like Java
      default:
        return NullValue{};
    }
  }

  static Tri compare(BinaryOp op, const Value& lhs, const Value& rhs) {
    if (is_numeric(lhs) && is_numeric(rhs)) {
      const double a = as_double(lhs);
      const double b = as_double(rhs);
      switch (op) {
        case BinaryOp::kEq:
          return a == b ? Tri::kTrue : Tri::kFalse;
        case BinaryOp::kNeq:
          return a != b ? Tri::kTrue : Tri::kFalse;
        case BinaryOp::kLt:
          return a < b ? Tri::kTrue : Tri::kFalse;
        case BinaryOp::kLe:
          return a <= b ? Tri::kTrue : Tri::kFalse;
        case BinaryOp::kGt:
          return a > b ? Tri::kTrue : Tri::kFalse;
        case BinaryOp::kGe:
          return a >= b ? Tri::kTrue : Tri::kFalse;
        default:
          return Tri::kUnknown;
      }
    }
    if (is_string(lhs) && is_string(rhs)) {
      if (op == BinaryOp::kEq) {
        return std::get<std::string>(lhs) == std::get<std::string>(rhs)
                   ? Tri::kTrue
                   : Tri::kFalse;
      }
      if (op == BinaryOp::kNeq) {
        return std::get<std::string>(lhs) != std::get<std::string>(rhs)
                   ? Tri::kTrue
                   : Tri::kFalse;
      }
      return Tri::kUnknown;  // ordering comparisons on strings are invalid
    }
    if (is_bool(lhs) && is_bool(rhs)) {
      if (op == BinaryOp::kEq) {
        return std::get<bool>(lhs) == std::get<bool>(rhs) ? Tri::kTrue
                                                          : Tri::kFalse;
      }
      if (op == BinaryOp::kNeq) {
        return std::get<bool>(lhs) != std::get<bool>(rhs) ? Tri::kTrue
                                                          : Tri::kFalse;
      }
      return Tri::kUnknown;
    }
    return Tri::kUnknown;  // cross-type comparison is invalid
  }

  const Message& message_;
};

}  // namespace

Tri Selector::evaluate(const Message& message) const {
  if (root_ == nullptr) return Tri::kTrue;
  return value_to_tri(Evaluator(message).eval(*root_));
}

}  // namespace gridmon::jms
