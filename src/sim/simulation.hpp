// Discrete-event simulation kernel.
//
// A Simulation owns a virtual clock and an event queue. Components schedule
// closures at absolute or relative virtual times; the kernel executes them in
// (time, insertion-order) order, so runs are fully deterministic. All
// randomness flows from the Simulation's root RNG through named streams.
//
// The kernel is single-threaded by design: the *modelled* system is highly
// concurrent (thousands of generator threads, broker pools), but the model
// itself needs no host parallelism — campaign parallelism lives strictly
// *across* runs (core/campaign.hpp).
//
// Hot-path design (see DESIGN.md §5): the queue is a bucketed calendar
// queue — a 4096-slot timer wheel of ~1 ms buckets with a binary-heap
// overflow level for events beyond the ~4.3 s window — and event nodes are
// recycled through a per-Simulation slab. Callbacks are EventFn (inline
// captures up to 48 bytes), and cancellation handles are lazy: schedule_*
// returns a free-to-discard ScheduledEvent token, and the shared control
// block behind EventHandle is only allocated when a caller actually binds
// one. A typical fire-and-forget event therefore allocates nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string_view>
#include <vector>

#include "sim/event_fn.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace gridmon::sim {

class Simulation;

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert. Handles are cheap to copy (shared control block).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent.
  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class Simulation;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// Lightweight token returned by Simulation::schedule_*. Discarding it is
/// free — no control block exists until handle() (or the implicit
/// EventHandle conversion) materialises one. The token itself supports O(1)
/// allocation-free cancel()/pending() and stays safe after the event fires:
/// a generation check makes stale tokens inert.
class ScheduledEvent {
 public:
  ScheduledEvent() = default;

  /// Cancel without allocating (safe no-op once fired).
  void cancel() const;
  [[nodiscard]] bool pending() const;

  /// Materialise a copyable, shareable EventHandle (allocates the control
  /// block on first use).
  [[nodiscard]] EventHandle handle() const;
  // NOLINTNEXTLINE(google-explicit-constructor): existing call sites bind
  // schedule_*() results straight to EventHandle members.
  operator EventHandle() const { return handle(); }

 private:
  friend class Simulation;
  ScheduledEvent(Simulation* sim, std::uint32_t node, std::uint64_t seq)
      : sim_(sim), node_(node), seq_(seq) {}
  Simulation* sim_ = nullptr;
  std::uint32_t node_ = 0;
  std::uint64_t seq_ = 0;  ///< 0 = inert (live sequence numbers start at 1)
};

/// Kernel self-metrics for one Simulation, all deterministic functions of
/// the run (campaign exports include them; events/sec is derived by
/// dividing events_executed by the harness wall clock, which is the only
/// nondeterministic factor and lives in RunRecord::wall_seconds).
struct KernelStats {
  std::uint64_t events_executed = 0;
  std::uint64_t peak_queue_depth = 0;
  /// EventFn spills: callbacks whose captures exceeded the inline buffer.
  std::uint64_t callback_heap_allocs = 0;
  /// Lazy EventHandle control blocks actually materialised.
  std::uint64_t handles_materialised = 0;
  /// Events scheduled beyond the level-1 wheel window (second-level wheel
  /// slot or, past its ~4.9 h span, the far binary heap).
  std::uint64_t overflow_events = 0;
  /// Event-node slab chunks allocated (1024 nodes each).
  std::uint64_t slab_chunks = 0;
  /// Bytes held by the event-node slab (chunks x nodes x node size) —
  /// the kernel's share of the model memory footprint (obs/memprof).
  std::uint64_t slab_bytes = 0;
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Root RNG seed this simulation was built with.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Derive a named, independent RNG stream.
  [[nodiscard]] util::Rng rng_stream(std::string_view label) const {
    return root_rng_.stream(label);
  }

  /// Schedule `fn` at absolute virtual time `at` (clamped to now()).
  ScheduledEvent schedule_at(SimTime at, EventFn fn);

  /// Schedule `fn` after `delay` (>= 0) from now.
  ScheduledEvent schedule_after(SimTime delay, EventFn fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedule `fn` to run at the current time, after already-queued
  /// same-time events.
  ScheduledEvent post(EventFn fn) { return schedule_after(0, std::move(fn)); }

  /// Run until the queue empties or `until` is reached (events at exactly
  /// `until` are executed). Returns the number of events executed.
  std::uint64_t run_until(SimTime until) {
    return run_loop(until, /*advance_clock=*/true);
  }

  /// Run until the queue is empty.
  std::uint64_t run() {
    return run_loop(std::numeric_limits<SimTime>::max(),
                    /*advance_clock=*/false);
  }

  /// Request that the run loop stop after the current event.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t queue_size() const { return queue_size_; }

  /// Exclude the event currently executing (or just executed) from
  /// KernelStats.events_executed. Pure-observer events — the obs Timeline
  /// sampling timer — call this so kernel event counts are identical with
  /// observability on or off (raw events_executed() still counts them).
  void discount_stat_event() { ++stat_discounted_; }

  /// Kernel self-metrics (deterministic; see KernelStats).
  [[nodiscard]] KernelStats kernel_stats() const {
    KernelStats stats;
    stats.events_executed = executed_ - stat_discounted_;
    stats.peak_queue_depth = peak_queue_depth_;
    stats.callback_heap_allocs = callback_heap_allocs_;
    stats.handles_materialised = handles_materialised_;
    stats.overflow_events = overflow_events_;
    stats.slab_chunks = chunks_.size();
    stats.slab_bytes = static_cast<std::uint64_t>(chunks_.size()) *
                       (1ull << kChunkShift) * sizeof(EventNode);
    return stats;
  }

 private:
  friend class ScheduledEvent;

  // --- calendar-queue geometry ----------------------------------------------
  // Two-level hierarchical wheel. Level 1: ~1.05 ms buckets x 4096 slots =
  // a ~4.3 s span that swallows sub-window delays (network transits, CPU
  // service, the R-GMA 100 ms poll). Level 2: ~4.3 s slots x 4096 = ~4.9 h;
  // longer timers (10 s publish periods, 30 s SP delay) land here in O(1)
  // and a whole slot is expanded into level 1 when the cursor reaches it.
  // Events past the level-2 span (no experiment gets there) fall back to a
  // binary heap. The level-1 window is always *aligned* to one level-2
  // slot (l1_slot_): alignment guarantees a given bucket maps to exactly
  // one region at any time, which keeps (time, seq) order exact.
  static constexpr int kBucketShift = 20;
  static constexpr int kWheelBits = 12;
  static constexpr std::uint64_t kWheelSize = 1ull << kWheelBits;
  static constexpr std::uint64_t kWheelMask = kWheelSize - 1;
  static constexpr int kChunkShift = 10;  ///< 1024 slab nodes per chunk
  static constexpr std::uint32_t kChunkMask = (1u << kChunkShift) - 1;

  struct EventNode {
    SimTime time = 0;
    std::uint64_t seq = 0;  ///< 0 = free/retired (generation check)
    EventFn fn;
    /// Lazily materialised; empty for fire-and-forget events.
    std::shared_ptr<EventHandle::State> state;
    bool cancelled = false;
  };

  [[nodiscard]] EventNode& node(std::uint32_t index) {
    return chunks_[index >> kChunkShift][index & kChunkMask];
  }
  [[nodiscard]] const EventNode& node(std::uint32_t index) const {
    return chunks_[index >> kChunkShift][index & kChunkMask];
  }
  [[nodiscard]] static std::uint64_t bucket_of(SimTime time) {
    return static_cast<std::uint64_t>(time) >> kBucketShift;
  }

  /// Queue entry: the ordering key travels with the slab index so heap
  /// sifts and bucket scans stay inside the (contiguous) queue vectors and
  /// never chase indices into the ~100-byte-stride node slab.
  struct QueueEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t index;
  };
  /// (time, seq) min-order for the front/overflow heaps.
  [[nodiscard]] static bool later(const QueueEntry& a, const QueueEntry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  std::uint32_t allocate_node();
  void recycle_node(std::uint32_t index);
  void enqueue(const QueueEntry& entry);
  /// Ensure front_ holds the globally earliest pending events; false when
  /// the whole queue is empty.
  bool refill_front();
  /// First occupied level-1 slot at/after the cursor (wheel_count_ > 0).
  [[nodiscard]] std::uint64_t next_occupied_bucket() const;
  /// First occupied level-2 slot after l1_slot_ (l2_count_ > 0).
  [[nodiscard]] std::uint64_t next_occupied_l2_slot() const;
  std::uint64_t run_loop(SimTime until, bool advance_clock);

  // ScheduledEvent backend.
  void cancel_event(std::uint32_t index, std::uint64_t seq);
  [[nodiscard]] bool event_pending(std::uint32_t index,
                                   std::uint64_t seq) const;
  EventHandle materialise_handle(std::uint32_t index, std::uint64_t seq);

  SimTime now_ = 0;
  std::uint64_t seed_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t stat_discounted_ = 0;
  bool stop_requested_ = false;
  util::Rng root_rng_;

  // Event-node slab: chunked so nodes never relocate, recycled via a free
  // list. Indices, not pointers, flow through the queue structures.
  std::vector<std::unique_ptr<EventNode[]>> chunks_;
  std::vector<std::uint32_t> free_nodes_;

  // The calendar queue. Invariants: front_ (descending (time,seq) drain
  // stack) holds events in buckets before cursor_bucket_; level-1 wheel
  // slots hold events whose bucket lies in level-2 slot l1_slot_ at or
  // after the cursor; l2_ slots (> l1_slot_) hold later events; overflow_
  // (min-heap) holds events beyond the level-2 span. Time never runs
  // backwards, so cursor_bucket_ and l1_slot_ only grow.
  std::vector<std::vector<QueueEntry>> wheel_;
  std::vector<std::uint64_t> occupied_;  ///< one bit per level-1 slot
  std::uint64_t cursor_bucket_ = 0;
  std::uint64_t l1_slot_ = 0;  ///< level-2 slot expanded into the wheel
  std::size_t wheel_count_ = 0;
  std::vector<std::vector<QueueEntry>> l2_;
  std::vector<std::uint64_t> l2_occupied_;  ///< one bit per level-2 slot
  std::size_t l2_count_ = 0;
  std::vector<QueueEntry> front_;
  std::vector<QueueEntry> overflow_;
  std::size_t queue_size_ = 0;

  // Self-metrics.
  std::uint64_t peak_queue_depth_ = 0;
  std::uint64_t callback_heap_allocs_ = 0;
  std::uint64_t handles_materialised_ = 0;
  std::uint64_t overflow_events_ = 0;
};

inline void ScheduledEvent::cancel() const {
  if (sim_ != nullptr && seq_ != 0) sim_->cancel_event(node_, seq_);
}

inline bool ScheduledEvent::pending() const {
  return sim_ != nullptr && seq_ != 0 && sim_->event_pending(node_, seq_);
}

inline EventHandle ScheduledEvent::handle() const {
  if (sim_ == nullptr || seq_ == 0) return EventHandle{};
  return sim_->materialise_handle(node_, seq_);
}

/// Repeating timer: runs `fn` every `period` starting at `first_at`.
/// Cancellation is via the returned handle chain: the timer reschedules
/// itself, and cancelling the PeriodicTimer stops future firings. The user
/// callback is stored once in the shared Impl; each re-arm only enqueues a
/// 16-byte weak_ptr capture, which lives inline in the event node.
class PeriodicTimer {
 public:
  PeriodicTimer() = default;
  PeriodicTimer(Simulation& sim, SimTime first_at, SimTime period,
                std::function<void()> fn);
  ~PeriodicTimer() { cancel(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;
  PeriodicTimer(PeriodicTimer&&) = default;
  /// Cancels any timer this object already runs before adopting the other
  /// one — assigning over an active timer must not leak a self-re-arming
  /// Impl (it would fire forever via the shared_ptr its events capture).
  PeriodicTimer& operator=(PeriodicTimer&& other) noexcept {
    if (this != &other) {
      cancel();
      impl_ = std::move(other.impl_);
    }
    return *this;
  }

  void cancel();
  [[nodiscard]] bool active() const { return impl_ != nullptr && impl_->active; }

 private:
  struct Impl {
    Simulation* sim = nullptr;
    SimTime period = 0;
    std::function<void()> fn;
    bool active = true;
    ScheduledEvent next;
  };
  static void arm(const std::shared_ptr<Impl>& impl, SimTime at);
  std::shared_ptr<Impl> impl_;
};

}  // namespace gridmon::sim
