// Discrete-event simulation kernel.
//
// A Simulation owns a virtual clock and an event queue. Components schedule
// closures at absolute or relative virtual times; the kernel executes them in
// (time, insertion-order) order, so runs are fully deterministic. All
// randomness flows from the Simulation's root RNG through named streams.
//
// The kernel is single-threaded by design: the *modelled* system is highly
// concurrent (thousands of generator threads, broker pools), but the model
// itself needs no host parallelism — determinism and reproducibility matter
// more for a measurement study than wall-clock speed, and virtual 30-minute
// experiments complete in seconds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string_view>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace gridmon::sim {

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert. Handles are cheap to copy (shared control block).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent.
  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class Simulation;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Root RNG seed this simulation was built with.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Derive a named, independent RNG stream.
  [[nodiscard]] util::Rng rng_stream(std::string_view label) const {
    return root_rng_.stream(label);
  }

  /// Schedule `fn` at absolute virtual time `at` (clamped to now()).
  EventHandle schedule_at(SimTime at, std::function<void()> fn);

  /// Schedule `fn` after `delay` (>= 0) from now.
  EventHandle schedule_after(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedule `fn` to run at the current time, after already-queued
  /// same-time events.
  EventHandle post(std::function<void()> fn) { return schedule_after(0, std::move(fn)); }

  /// Run until the queue empties or `until` is reached (events at exactly
  /// `until` are executed). Returns the number of events executed.
  std::uint64_t run_until(SimTime until);

  /// Run until the queue is empty.
  std::uint64_t run();

  /// Request that the run loop stop after the current event.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t queue_size() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t seed_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
  util::Rng root_rng_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Repeating timer: runs `fn` every `period` starting at `first_at`.
/// Cancellation is via the returned handle chain: the timer reschedules
/// itself, and cancelling the PeriodicTimer stops future firings.
class PeriodicTimer {
 public:
  PeriodicTimer() = default;
  PeriodicTimer(Simulation& sim, SimTime first_at, SimTime period,
                std::function<void()> fn);
  ~PeriodicTimer() { cancel(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;
  PeriodicTimer(PeriodicTimer&&) = default;
  PeriodicTimer& operator=(PeriodicTimer&&) = default;

  void cancel();
  [[nodiscard]] bool active() const { return impl_ != nullptr && impl_->active; }

 private:
  struct Impl {
    Simulation* sim = nullptr;
    SimTime period = 0;
    std::function<void()> fn;
    bool active = true;
    EventHandle next;
  };
  static void arm(const std::shared_ptr<Impl>& impl, SimTime at);
  std::shared_ptr<Impl> impl_;
};

}  // namespace gridmon::sim
