// Small-buffer-optimised event callback.
//
// The kernel executes millions of one-shot closures per run; wrapping each
// in std::function costs a heap allocation whenever the capture list
// exceeds libstdc++'s tiny inline buffer (16 bytes), which almost every
// model closure does (a shared_ptr plus a couple of ints is already over).
// EventFn stores captures up to kInlineBytes directly inside the event
// node and only spills to the heap beyond that. It is move-only (event
// callbacks are consumed exactly once by the kernel, never copied) and
// invocable multiple times (PeriodicTimer re-fires the same callable).
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace gridmon::sim {

class EventFn {
 public:
  /// Captures up to this many bytes live inline in the event node. Sized
  /// for the common model closures: a shared_ptr self + a few scalars, or
  /// a std::function being forwarded (32 bytes in libstdc++).
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() noexcept = default;
  // NOLINTNEXTLINE(google-explicit-constructor): `nullptr` = no callback.
  EventFn(std::nullptr_t) noexcept {}

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function.
  EventFn(F&& f) {
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(storage_); }
  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the captures spilled to the heap (kernel alloc accounting).
  [[nodiscard]] bool on_heap() const noexcept { return ops_ && ops_->heap; }

  void reset() noexcept {
    if (ops_) {
      // Trivially-destructible payloads (heap mode stores a raw pointer but
      // still owns the callable, so it is never trivial here) skip the
      // indirect call entirely.
      if (!ops_->trivial_destroy) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into dst from src, then destroy src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
    bool heap;
    /// memcpy of the storage buffer is a valid relocation (trivially
    /// copyable inline payloads; heap mode, which just moves its pointer).
    bool trivial_relocate;
    bool trivial_destroy;
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
      [](void* dst, void* src) {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); },
      /*heap=*/false,
      /*trivial_relocate=*/std::is_trivially_copyable_v<D>,
      /*trivial_destroy=*/std::is_trivially_destructible_v<D>};

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
      [](void* dst, void* src) {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* p) { delete *std::launder(reinterpret_cast<D**>(p)); },
      /*heap=*/true,
      /*trivial_relocate=*/true,
      /*trivial_destroy=*/false};

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_) {
      if (ops_->trivial_relocate) {
        // Deliberately copies the full buffer: a fixed-size memcpy is three
        // vector moves, a payload-sized one is a library call. The tail
        // bytes past the payload are indeterminate but unsigned char makes
        // copying them well-defined; GCC still warns.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
        std::memcpy(storage_, other.storage_, kInlineBytes);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
      } else {
        ops_->relocate(storage_, other.storage_);
      }
    }
    other.ops_ = nullptr;
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

}  // namespace gridmon::sim
