#include "sim/simulation.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace gridmon::sim {

void EventHandle::cancel() {
  if (state_) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

Simulation::Simulation(std::uint64_t seed)
    : seed_(seed),
      root_rng_(seed),
      wheel_(kWheelSize),
      occupied_(kWheelSize / 64, 0),
      l2_(kWheelSize),
      l2_occupied_(kWheelSize / 64, 0) {}

std::uint32_t Simulation::allocate_node() {
  if (free_nodes_.empty()) {
    chunks_.push_back(std::make_unique<EventNode[]>(1u << kChunkShift));
    const auto base =
        static_cast<std::uint32_t>((chunks_.size() - 1) << kChunkShift);
    free_nodes_.reserve(1u << kChunkShift);
    // Hand nodes out in ascending index order (purely cosmetic: the first
    // events of a run land in the first slab slots).
    for (std::uint32_t i = 1u << kChunkShift; i > 0; --i) {
      free_nodes_.push_back(base + i - 1);
    }
  }
  const std::uint32_t index = free_nodes_.back();
  free_nodes_.pop_back();
  return index;
}

void Simulation::recycle_node(std::uint32_t index) {
  EventNode& n = node(index);
  n.seq = 0;  // retire the generation: stale tokens become inert
  n.fn.reset();
  n.state.reset();
  n.cancelled = false;
  free_nodes_.push_back(index);
}

void Simulation::enqueue(const QueueEntry& entry) {
  const std::uint64_t bucket = bucket_of(entry.time);
  if (bucket < cursor_bucket_) {
    // The front region is already being drained at this time range: insert
    // at the (time, seq) position in the descending drain stack. The stack
    // holds at most the tail of one bucket, so the shift stays short.
    front_.insert(
        std::upper_bound(front_.begin(), front_.end(), entry, later), entry);
    return;
  }
  const std::uint64_t slot_l2 = bucket >> kWheelBits;
  if (slot_l2 == l1_slot_) {
    const std::uint64_t slot = bucket & kWheelMask;
    wheel_[slot].push_back(entry);
    occupied_[slot >> 6] |= 1ull << (slot & 63);
    ++wheel_count_;
  } else if (slot_l2 < kWheelSize) {
    // Later level-2 slot (slot_l2 > l1_slot_ whenever bucket >= cursor):
    // O(1) append; the whole slot is expanded into level 1 when the cursor
    // gets there.
    l2_[slot_l2].push_back(entry);
    l2_occupied_[slot_l2 >> 6] |= 1ull << (slot_l2 & 63);
    ++l2_count_;
    ++overflow_events_;
  } else {
    // Beyond the ~4.9 h level-2 span: far heap.
    overflow_.push_back(entry);
    std::push_heap(overflow_.begin(), overflow_.end(), later);
    ++overflow_events_;
  }
}

std::uint64_t Simulation::next_occupied_bucket() const {
  // While wheel_count_ > 0 the cursor sits inside level-2 slot l1_slot_,
  // so the scan never wraps: it runs from the cursor's slot to the end of
  // the aligned window.
  const std::uint64_t base = l1_slot_ << kWheelBits;
  const std::uint64_t start = cursor_bucket_ - base;
  const std::uint64_t words = kWheelSize / 64;
  std::uint64_t word_index = start >> 6;
  std::uint64_t word = occupied_[word_index] & (~0ull << (start & 63));
  while (word == 0 && ++word_index < words) {
    word = occupied_[word_index];
  }
  if (word == 0) return cursor_bucket_;  // unreachable while wheel_count_ > 0
  return base + (word_index << 6) +
         static_cast<std::uint64_t>(std::countr_zero(word));
}

std::uint64_t Simulation::next_occupied_l2_slot() const {
  // Occupied level-2 slots are all strictly after l1_slot_ (enqueue routes
  // bucket >= cursor with the same slot into level 1), so no wrap either.
  const std::uint64_t start = l1_slot_ + 1;
  const std::uint64_t words = kWheelSize / 64;
  std::uint64_t word_index = start >> 6;
  std::uint64_t word = l2_occupied_[word_index] & (~0ull << (start & 63));
  while (word == 0 && ++word_index < words) {
    word = l2_occupied_[word_index];
  }
  if (word == 0) return l1_slot_;  // unreachable while l2_count_ > 0
  return (word_index << 6) +
         static_cast<std::uint64_t>(std::countr_zero(word));
}

bool Simulation::refill_front() {
  if (!front_.empty()) return true;
  for (;;) {
    if (wheel_count_ > 0) {
      const std::uint64_t bucket = next_occupied_bucket();
      const std::uint64_t slot = bucket & kWheelMask;
      front_.swap(wheel_[slot]);
      wheel_count_ -= front_.size();
      occupied_[slot >> 6] &= ~(1ull << (slot & 63));
      cursor_bucket_ = bucket + 1;
      // Descending (time, seq) order: the drain stack pops the earliest
      // event off the back in O(1). One sort per bucket beats heap sifts
      // per event.
      std::sort(front_.begin(), front_.end(), later);
      return true;
    }
    if (l2_count_ > 0) {
      // Level 1 drained: expand the next occupied level-2 slot into it.
      // All its entries share that slot, so they all fit the new window.
      const std::uint64_t slot_l2 = next_occupied_l2_slot();
      cursor_bucket_ = slot_l2 << kWheelBits;
      l1_slot_ = slot_l2;
      std::vector<QueueEntry> batch;
      batch.swap(l2_[slot_l2]);  // frees the slot's capacity at scope end
      l2_occupied_[slot_l2 >> 6] &= ~(1ull << (slot_l2 & 63));
      l2_count_ -= batch.size();
      for (const QueueEntry& entry : batch) {
        const std::uint64_t slot = bucket_of(entry.time) & kWheelMask;
        wheel_[slot].push_back(entry);
        occupied_[slot >> 6] |= 1ull << (slot & 63);
      }
      wheel_count_ += batch.size();
      continue;
    }
    if (!overflow_.empty()) {
      // Far region: jump to the earliest heap event and pull everything in
      // its level-2 slot into the wheel (the rest of the heap stays put).
      const std::uint64_t bucket = bucket_of(overflow_.front().time);
      if (bucket > cursor_bucket_) cursor_bucket_ = bucket;
      l1_slot_ = bucket >> kWheelBits;
      while (!overflow_.empty() &&
             (bucket_of(overflow_.front().time) >> kWheelBits) == l1_slot_) {
        std::pop_heap(overflow_.begin(), overflow_.end(), later);
        const QueueEntry entry = overflow_.back();
        overflow_.pop_back();
        const std::uint64_t slot = bucket_of(entry.time) & kWheelMask;
        wheel_[slot].push_back(entry);
        occupied_[slot >> 6] |= 1ull << (slot & 63);
        ++wheel_count_;
      }
      continue;
    }
    return false;
  }
}

ScheduledEvent Simulation::schedule_at(SimTime at, EventFn fn) {
  if (at < now_) at = now_;
  if (fn.on_heap()) ++callback_heap_allocs_;
  const std::uint32_t index = allocate_node();
  EventNode& n = node(index);
  n.time = at;
  n.seq = next_seq_++;
  n.fn = std::move(fn);
  enqueue(QueueEntry{at, n.seq, index});
  ++queue_size_;
  if (queue_size_ > peak_queue_depth_) peak_queue_depth_ = queue_size_;
  return ScheduledEvent(this, index, n.seq);
}

std::uint64_t Simulation::run_loop(SimTime until, bool advance_clock) {
  std::uint64_t executed = 0;
  stop_requested_ = false;
  while (!stop_requested_ && refill_front()) {
    if (front_.back().time > until) break;
    const std::uint32_t index = front_.back().index;
    front_.pop_back();
    EventNode& n = node(index);
    --queue_size_;
    now_ = n.time;
    if (n.cancelled || (n.state && n.state->cancelled)) {
      recycle_node(index);
      continue;
    }
    if (n.state) n.state->fired = true;
    // Retire the generation before invoking (stale tokens are inert while
    // the callback runs), then invoke in place: the node cannot be reused
    // mid-invoke because it is not on the free list yet, and slab chunks
    // never relocate even if the callback schedules new events.
    n.seq = 0;
    n.fn();
    recycle_node(index);
    ++executed;
    ++executed_;
  }
  // Advance the clock to the horizon even if the queue drained earlier, so
  // back-to-back run_until calls see monotonic time.
  if (advance_clock && now_ < until && queue_size_ == 0) now_ = until;
  return executed;
}

void Simulation::cancel_event(std::uint32_t index, std::uint64_t seq) {
  EventNode& n = node(index);
  if (n.seq != seq) return;  // already fired or recycled
  n.cancelled = true;
  if (n.state) n.state->cancelled = true;
}

bool Simulation::event_pending(std::uint32_t index, std::uint64_t seq) const {
  const EventNode& n = node(index);
  return n.seq == seq && !n.cancelled && !(n.state && n.state->cancelled);
}

EventHandle Simulation::materialise_handle(std::uint32_t index,
                                           std::uint64_t seq) {
  EventNode& n = node(index);
  if (n.seq != seq) return EventHandle{};  // fired: inert handle
  if (!n.state) {
    n.state = std::make_shared<EventHandle::State>();
    n.state->cancelled = n.cancelled;
    ++handles_materialised_;
  }
  return EventHandle(n.state);
}

PeriodicTimer::PeriodicTimer(Simulation& sim, SimTime first_at, SimTime period,
                             std::function<void()> fn) {
  impl_ = std::make_shared<Impl>();
  impl_->sim = &sim;
  impl_->period = period > 0 ? period : 1;
  impl_->fn = std::move(fn);
  arm(impl_, first_at);
}

void PeriodicTimer::arm(const std::shared_ptr<Impl>& impl, SimTime at) {
  std::weak_ptr<Impl> weak = impl;
  impl->next = impl->sim->schedule_at(at, [weak] {
    auto self = weak.lock();
    if (!self || !self->active) return;
    self->fn();
    // fn may have cancelled the timer.
    if (self->active) arm(self, self->sim->now() + self->period);
  });
}

void PeriodicTimer::cancel() {
  if (impl_) {
    impl_->active = false;
    impl_->next.cancel();
  }
}

}  // namespace gridmon::sim
