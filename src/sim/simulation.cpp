#include "sim/simulation.hpp"

#include <utility>

namespace gridmon::sim {

void EventHandle::cancel() {
  if (state_) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

Simulation::Simulation(std::uint64_t seed)
    : seed_(seed), root_rng_(seed) {}

EventHandle Simulation::schedule_at(SimTime at, std::function<void()> fn) {
  if (at < now_) at = now_;
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Event{at, next_seq_++, std::move(fn), state});
  return EventHandle(std::move(state));
}

std::uint64_t Simulation::run_until(SimTime until) {
  std::uint64_t executed = 0;
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    const Event& top = queue_.top();
    if (top.time > until) break;
    // Move the event out before popping; pop invalidates the reference.
    Event event = std::move(const_cast<Event&>(top));
    queue_.pop();
    now_ = event.time;
    if (event.state->cancelled) continue;
    event.state->fired = true;
    event.fn();
    ++executed;
    ++executed_;
  }
  // Advance the clock to the horizon even if the queue drained earlier, so
  // back-to-back run_until calls see monotonic time.
  if (now_ < until && queue_.empty()) now_ = until;
  return executed;
}

std::uint64_t Simulation::run() {
  std::uint64_t executed = 0;
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    if (event.state->cancelled) continue;
    event.state->fired = true;
    event.fn();
    ++executed;
    ++executed_;
  }
  return executed;
}

PeriodicTimer::PeriodicTimer(Simulation& sim, SimTime first_at, SimTime period,
                             std::function<void()> fn) {
  impl_ = std::make_shared<Impl>();
  impl_->sim = &sim;
  impl_->period = period > 0 ? period : 1;
  impl_->fn = std::move(fn);
  arm(impl_, first_at);
}

void PeriodicTimer::arm(const std::shared_ptr<Impl>& impl, SimTime at) {
  std::weak_ptr<Impl> weak = impl;
  impl->next = impl->sim->schedule_at(at, [weak] {
    auto self = weak.lock();
    if (!self || !self->active) return;
    self->fn();
    // fn may have cancelled the timer.
    if (self->active) arm(self, self->sim->now() + self->period);
  });
}

void PeriodicTimer::cancel() {
  if (impl_) {
    impl_->active = false;
    impl_->next.cancel();
  }
}

}  // namespace gridmon::sim
