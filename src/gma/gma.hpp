// Grid Monitoring Architecture (GGF GFD.7) abstractions.
//
// GMA decomposes a monitoring system into producers, consumers and a
// directory service, and defines three data-transfer modes. Both candidate
// middlewares instantiate this architecture; the adapters in this module
// express them in GMA terms so experiment code can be written against the
// architecture rather than a particular middleware.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "jms/message.hpp"

namespace gridmon::gma {

/// GMA data-transfer modes (GFD.7 §3).
enum class TransferMode {
  kPublishSubscribe,  ///< either side initiates; stream until terminated
  kQueryResponse,     ///< consumer initiates; all data in one response
  kNotification,      ///< producer initiates; all data in one notification
};

[[nodiscard]] std::string to_string(TransferMode mode);

/// One monitoring event flowing through the architecture.
struct MonitoringEvent {
  std::string source;                  ///< producer identity
  jms::MessagePtr payload;             ///< the data record
  std::int64_t sequence = 0;
};

using EventSink = std::function<void(const MonitoringEvent&)>;

/// Producer interface: gathers data from an instrument/host and makes it
/// available to consumers.
class Producer {
 public:
  virtual ~Producer() = default;
  [[nodiscard]] virtual const std::string& name() const = 0;
  /// Publish one event (publish/subscribe or notification mode).
  virtual void publish(MonitoringEvent event) = 0;
};

/// Consumer interface: receives data from producers.
class Consumer {
 public:
  virtual ~Consumer() = default;
  [[nodiscard]] virtual const std::string& name() const = 0;
  /// Begin receiving (publish/subscribe mode).
  virtual void subscribe(const std::string& subject, EventSink sink) = 0;
  /// One-shot query (query/response mode): deliver everything currently
  /// available for `subject` through `sink`, then stop.
  virtual void query(const std::string& subject, EventSink sink) = 0;
};

/// Directory-service entry: who serves which subject, and how.
struct DirectoryEntry {
  std::string name;
  std::string subject;
  bool is_producer = true;
  std::vector<TransferMode> modes;
  std::string address;  ///< middleware-specific locator
};

/// The GMA directory service: producers/consumers publish their existence
/// and metadata; peers search it to find each other. Data never flows
/// through the directory — separating discovery from transfer is GMA's
/// scalability principle.
class DirectoryService {
 public:
  void register_entry(DirectoryEntry entry);
  void unregister(const std::string& name);

  [[nodiscard]] std::vector<DirectoryEntry> find_by_subject(
      const std::string& subject) const;
  [[nodiscard]] std::optional<DirectoryEntry> find_by_name(
      const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, DirectoryEntry> entries_;
};

}  // namespace gridmon::gma
