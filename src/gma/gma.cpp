#include "gma/gma.hpp"

namespace gridmon::gma {

std::string to_string(TransferMode mode) {
  switch (mode) {
    case TransferMode::kPublishSubscribe:
      return "publish/subscribe";
    case TransferMode::kQueryResponse:
      return "query/response";
    case TransferMode::kNotification:
      return "notification";
  }
  return "?";
}

void DirectoryService::register_entry(DirectoryEntry entry) {
  entries_[entry.name] = std::move(entry);
}

void DirectoryService::unregister(const std::string& name) {
  entries_.erase(name);
}

std::vector<DirectoryEntry> DirectoryService::find_by_subject(
    const std::string& subject) const {
  std::vector<DirectoryEntry> out;
  for (const auto& [name, entry] : entries_) {
    if (entry.subject == subject) out.push_back(entry);
  }
  return out;
}

std::optional<DirectoryEntry> DirectoryService::find_by_name(
    const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

}  // namespace gridmon::gma
