// GMA adapters: express the Narada client and the R-GMA API in GMA's
// producer/consumer/directory vocabulary.
#pragma once

#include <memory>

#include "gma/gma.hpp"
#include "narada/client.hpp"
#include "rgma/api.hpp"

namespace gridmon::gma {

/// A Narada JMS client seen as a GMA producer (topic = subject).
class NaradaProducer final : public Producer {
 public:
  NaradaProducer(std::string name, std::string topic,
                 std::shared_ptr<narada::NaradaClient> client)
      : name_(std::move(name)),
        topic_(std::move(topic)),
        client_(std::move(client)) {}

  [[nodiscard]] const std::string& name() const override { return name_; }

  void publish(MonitoringEvent event) override {
    jms::Message message = *event.payload;  // copy; provider stamps headers
    message.destination = topic_;
    client_->publish(std::move(message));
  }

 private:
  std::string name_;
  std::string topic_;
  std::shared_ptr<narada::NaradaClient> client_;
};

/// A Narada JMS client seen as a GMA consumer. Only publish/subscribe mode
/// is natural for a JMS topic; query() drains nothing because topics have
/// no retained history (that asymmetry versus R-GMA is one of the paper's
/// qualitative comparison points).
class NaradaConsumer final : public Consumer {
 public:
  NaradaConsumer(std::string name,
                 std::shared_ptr<narada::NaradaClient> client)
      : name_(std::move(name)), client_(std::move(client)) {}

  [[nodiscard]] const std::string& name() const override { return name_; }

  void subscribe(const std::string& subject, EventSink sink) override {
    client_->subscribe(subject, "", jms::AcknowledgeMode::kAutoAcknowledge,
                       [sink = std::move(sink), seq = std::int64_t{0}](
                           const jms::MessagePtr& message, SimTime) mutable {
                         MonitoringEvent event;
                         event.source = message->message_id;
                         event.payload = message;
                         event.sequence = seq++;
                         sink(event);
                       });
  }

  void query(const std::string& subject, EventSink sink) override {
    // JMS topics retain nothing: a query/response returns the empty set.
    (void)subject;
    (void)sink;
  }

 private:
  std::string name_;
  std::shared_ptr<narada::NaradaClient> client_;
};

/// An R-GMA Primary Producer seen as a GMA producer: events become rows in
/// the virtual database. The payload must be a MapMessage whose entries
/// line up with the table's columns (by column order of the row builder
/// used by the caller); here we accept pre-built rows via a converter.
class RgmaProducer final : public Producer {
 public:
  using RowConverter =
      std::function<std::vector<rgma::SqlValue>(const MonitoringEvent&)>;

  RgmaProducer(std::string name, std::shared_ptr<rgma::PrimaryProducer> api,
               RowConverter convert)
      : name_(std::move(name)),
        api_(std::move(api)),
        convert_(std::move(convert)) {}

  [[nodiscard]] const std::string& name() const override { return name_; }

  void publish(MonitoringEvent event) override {
    api_->insert(convert_(event));
  }

 private:
  std::string name_;
  std::shared_ptr<rgma::PrimaryProducer> api_;
  RowConverter convert_;
};

/// An R-GMA consumer seen through GMA: subscribe() maps to the continuous
/// query plus the polling loop; query() maps to a one-time latest query —
/// the transfer mode JMS topics cannot offer (GMA's query/response).
class RgmaConsumer final : public Consumer {
 public:
  using TupleConverter = std::function<MonitoringEvent(const rgma::Tuple&)>;

  RgmaConsumer(std::string name, std::shared_ptr<rgma::Consumer> api,
               sim::Simulation& sim, SimTime poll_period,
               TupleConverter convert)
      : name_(std::move(name)),
        api_(std::move(api)),
        sim_(sim),
        poll_period_(poll_period),
        convert_(std::move(convert)) {}

  [[nodiscard]] const std::string& name() const override { return name_; }

  void subscribe(const std::string& subject, EventSink sink) override {
    (void)subject;  // the continuous query was fixed at consumer creation
    sink_ = std::move(sink);
    poller_ = sim::PeriodicTimer(sim_, sim_.now() + poll_period_,
                                 poll_period_, [this] {
                                   api_->poll([this](std::vector<rgma::Tuple>
                                                         tuples,
                                                     SimTime) {
                                     for (const auto& tuple : tuples) {
                                       if (sink_) sink_(convert_(tuple));
                                     }
                                   });
                                 });
  }

  void query(const std::string& subject, EventSink sink) override {
    (void)subject;
    api_->query_latest([this, sink = std::move(sink)](
                           std::vector<rgma::Tuple> tuples, SimTime) {
      for (const auto& tuple : tuples) sink(convert_(tuple));
    });
  }

 private:
  std::string name_;
  std::shared_ptr<rgma::Consumer> api_;
  sim::Simulation& sim_;
  SimTime poll_period_;
  TupleConverter convert_;
  EventSink sink_;
  sim::PeriodicTimer poller_;
};

}  // namespace gridmon::gma
