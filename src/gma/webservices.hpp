// Web Services (SOAP) encoding cost model — §III.D, "Why not Web Services".
//
// The paper rejects SOAP for the data path, citing Chiu et al.: XML
// serialisation/deserialisation and floating-point↔ASCII conversion are the
// bottlenecks, with interoperability recoverable through a WS proxy at the
// edge. This module quantifies exactly that decision: it models the SOAP
// envelope a monitoring message would become and the CPU it costs to
// encode/decode, so the ablation bench can measure the overhead the paper
// avoided.
#pragma once

#include <cstdint>

#include "cluster/host.hpp"
#include "jms/message.hpp"
#include "narada/client.hpp"

namespace gridmon::gma {

struct SoapCostModel {
  /// Fixed envelope + headers (<soap:Envelope>, namespaces, WS-Addressing).
  std::int64_t envelope_bytes = 640;
  /// XML inflation of the binary payload (tags, text encoding): bytes of
  /// XML per byte of binary body.
  double xml_inflation = 2.6;
  /// CPU per XML byte produced/consumed (parse + build DOM-ish structures
  /// on the PIII; Chiu et al. measured SOAP an order of magnitude or more
  /// behind binary protocols).
  double xml_cpu_ns_per_byte = 1'400.0;
  /// Extra CPU per numeric field for the float/ASCII conversions the paper
  /// singles out.
  SimTime numeric_conversion = units::microseconds(9);

  /// Wire size of the message once wrapped in a SOAP envelope.
  [[nodiscard]] std::int64_t soap_wire_size(const jms::Message& msg) const {
    return envelope_bytes +
           static_cast<std::int64_t>(
               static_cast<double>(msg.wire_size()) * xml_inflation);
  }

  /// Count of numeric fields (properties + map body) needing conversion.
  [[nodiscard]] static int numeric_fields(const jms::Message& msg) {
    int count = 0;
    for (const auto& [name, value] : msg.properties()) {
      if (jms::is_numeric(value)) ++count;
    }
    if (const auto* map = std::get_if<jms::MapBody>(&msg.body)) {
      for (const auto& [name, value] : map->entries) {
        if (jms::is_numeric(value)) ++count;
      }
    }
    return count;
  }

  /// CPU demand to encode one message (binary → SOAP) at one endpoint.
  [[nodiscard]] SimTime codec_demand(const jms::Message& msg) const {
    return static_cast<SimTime>(
               static_cast<double>(soap_wire_size(msg)) *
               xml_cpu_ns_per_byte) +
           numeric_conversion * numeric_fields(msg);
  }

  /// CPU demand to decode a message that is *already* SOAP-sized on the
  /// wire (the receiving proxy parses the XML it was handed).
  [[nodiscard]] SimTime decode_demand(const jms::Message& soap_msg) const {
    return static_cast<SimTime>(
               static_cast<double>(soap_msg.wire_size()) *
               xml_cpu_ns_per_byte) +
           numeric_conversion * numeric_fields(soap_msg);
  }
};

/// A WS proxy in front of a Narada client: every publish pays SOAP encoding
/// on the client CPU and ships the inflated envelope; every delivery pays
/// SOAP decoding before the listener runs. This is the §III.D proxy design
/// point, made measurable.
class WsProxyPublisher {
 public:
  WsProxyPublisher(cluster::Host& host,
                   std::shared_ptr<narada::NaradaClient> client,
                   SoapCostModel model = {})
      : host_(host), client_(std::move(client)), model_(model) {}

  void publish(jms::Message message,
               narada::NaradaClient::SendCallback on_sent = nullptr) {
    const SimTime encode = model_.codec_demand(message);
    const std::int64_t pad =
        model_.soap_wire_size(message) - message.wire_size();
    // Carry the envelope inflation as opaque padding so the wire sees the
    // real SOAP size.
    message.map_set("soap_envelope",
                    std::string(static_cast<std::size_t>(pad > 0 ? pad : 0),
                                '<'));
    host_.cpu().execute(encode, [client = client_,
                                 message = std::move(message),
                                 on_sent = std::move(on_sent)]() mutable {
      client->publish(std::move(message), std::move(on_sent));
    });
  }

 private:
  cluster::Host& host_;
  std::shared_ptr<narada::NaradaClient> client_;
  SoapCostModel model_;
};

class WsProxySubscriber {
 public:
  WsProxySubscriber(cluster::Host& host,
                    std::shared_ptr<narada::NaradaClient> client,
                    SoapCostModel model = {})
      : host_(host), client_(std::move(client)), model_(model) {}

  void subscribe(const std::string& topic, const std::string& selector,
                 narada::NaradaClient::DeliveryListener listener) {
    client_->subscribe(
        topic, selector, jms::AcknowledgeMode::kAutoAcknowledge,
        [this, listener = std::move(listener)](const jms::MessagePtr& msg,
                                               SimTime arrived) {
          const SimTime decode = model_.decode_demand(*msg);
          host_.cpu().execute(decode, [listener, msg, arrived] {
            listener(msg, arrived);
          });
        });
  }

 private:
  cluster::Host& host_;
  std::shared_ptr<narada::NaradaClient> client_;
  SoapCostModel model_;
};

}  // namespace gridmon::gma
