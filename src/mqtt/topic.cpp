#include "mqtt/topic.hpp"

namespace gridmon::mqtt {

namespace {

/// Pop the leading level (up to the next '/') off `rest`.
std::string_view next_level(std::string_view& rest, bool& more) {
  const auto slash = rest.find('/');
  if (slash == std::string_view::npos) {
    const std::string_view level = rest;
    rest = {};
    more = false;
    return level;
  }
  const std::string_view level = rest.substr(0, slash);
  rest = rest.substr(slash + 1);
  more = true;
  return level;
}

}  // namespace

bool valid_filter(std::string_view filter) {
  if (filter.empty()) return false;
  std::string_view rest = filter;
  bool more = true;
  while (more) {
    const std::string_view level = next_level(rest, more);
    if (level == "#") {
      if (more) return false;  // '#' must be the final level
      continue;
    }
    if (level == "+") continue;
    if (level.find('#') != std::string_view::npos) return false;
    if (level.find('+') != std::string_view::npos) return false;
  }
  return true;
}

bool topic_matches(std::string_view filter, std::string_view topic) {
  if (filter.empty() || topic.empty()) return false;
  // Wildcard-first filters never match broker-internal ($...) topics.
  if ((filter.front() == '+' || filter.front() == '#') &&
      topic.front() == '$') {
    return false;
  }
  std::string_view f = filter;
  std::string_view t = topic;
  bool f_more = true;
  bool t_more = true;
  while (true) {
    const std::string_view f_level = next_level(f, f_more);
    if (f_level == "#") return true;  // matches the rest, including nothing
    const std::string_view t_level = next_level(t, t_more);
    if (f_level != "+" && f_level != t_level) return false;
    if (!f_more && !t_more) return true;
    if (!t_more) {
      // Topic exhausted: only a sole trailing '#' can still match
      // ("sport/#" matches "sport").
      return f_more && f == "#";
    }
    if (!f_more) return false;  // filter exhausted, topic has more levels
  }
}

}  // namespace gridmon::mqtt
