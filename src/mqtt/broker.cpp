#include "mqtt/broker.hpp"

#include <utility>
#include <vector>

#include "cluster/costs.hpp"
#include "mqtt/topic.hpp"
#include "obs/memprof.hpp"
#include "obs/recorder.hpp"
#include "util/log.hpp"

namespace gridmon::mqtt {

namespace costs = cluster::costs;

namespace {

/// Hop-span mark for the sample a packet carries (no-op unless the run has
/// an observability recorder installed and the message is sampled).
void mark_packet(const PacketPtr& packet, std::string_view stage) {
  if constexpr (!obs::kEnabled) return;
  if (obs::tracer() == nullptr) return;
  if (!packet->message_id.empty()) {
    obs::mark_message(packet->message_id, stage);
  }
}

/// Bytes a session's routing/soft state charges to the model-memory
/// profile (subscription list entry or parked/queued message).
std::int64_t subscription_footprint(const std::string& filter) {
  return static_cast<std::int64_t>(sizeof(std::pair<std::string, int>) +
                                   filter.size());
}

std::int64_t parked_footprint(const PacketPtr& packet) {
  return static_cast<std::int64_t>(sizeof(Packet) + packet->topic.size()) +
         packet->payload_bytes;
}

}  // namespace

MqttBroker::MqttBroker(cluster::Host& host, net::Lan& lan,
                       net::StreamTransport& streams, MqttBrokerConfig config)
    : host_(host), lan_(lan), streams_(streams), config_(config) {}

MqttBroker::~MqttBroker() {
  if (started_ && !crashed_) streams_.close_listener(config_.endpoint);
}

void MqttBroker::start() {
  started_ = true;
  streams_.listen(config_.endpoint, [this](net::StreamConnectionPtr conn) {
    on_stream_accept(std::move(conn));
  });
  retransmit_timer_ = sim::PeriodicTimer(
      host_.sim(), host_.sim().now() + config_.retransmit_sweep,
      config_.retransmit_sweep, [this] { retransmit_packets(); });
  keep_alive_timer_ = sim::PeriodicTimer(
      host_.sim(), host_.sim().now() + units::seconds(1), units::seconds(1),
      [this] { expire_sessions(); });
}

void MqttBroker::crash() {
  if (!started_ || crashed_) return;
  crashed_ = true;
  ++stats_.crashes;
  streams_.close_listener(config_.endpoint);
  // The process dies: every connection and all in-memory state goes.
  // Sessions are detached before the close so the deferred on_close
  // callbacks (and any will publication) no-op.
  for (auto& [id, session] : sessions_) {
    if (session.connected) {
      host_.heap().release(costs::kMqttSessionBytes);
      session.connected = false;
    }
    auto conn = std::move(session.conn);
    session.conn.reset();
    if (conn && conn->open()) conn->close();
    for (const auto& [filter, qos] : session.subscriptions) {
      obs::mem_sub(obs::MemCategory::kBrokerRouting,
                   subscription_footprint(filter));
    }
    for (const auto& [pid, parked] : session.inbound_qos2) {
      obs::mem_sub(obs::MemCategory::kBrokerRouting,
                   parked_footprint(parked));
    }
    // Offline queues release their kHistory accounting via the
    // HistoryBuffer destructor when sessions_ clears below.
  }
  sessions_.clear();
  sub_index_.clear();
  for (const auto& [topic, packet] : retained_) {
    obs::mem_sub(obs::MemCategory::kBrokerRouting, parked_footprint(packet));
  }
  retained_.clear();
  GRIDMON_WARN("mqtt.broker") << "broker " << config_.broker_id << " crashed";
}

void MqttBroker::restart() {
  if (!started_ || !crashed_) return;
  crashed_ = false;
  streams_.listen(config_.endpoint, [this](net::StreamConnectionPtr conn) {
    on_stream_accept(std::move(conn));
  });
  GRIDMON_WARN("mqtt.broker")
      << "broker " << config_.broker_id << " restarted";
}

int MqttBroker::subscription_count() const {
  int count = 0;
  for (const auto& [id, session] : sessions_) {
    count += static_cast<int>(session.subscriptions.size());
  }
  return count;
}

SimTime MqttBroker::packet_service_demand(std::int64_t bytes,
                                          int fanout) const {
  const SimTime demand =
      costs::kMqttPacketBase +
      static_cast<SimTime>(static_cast<double>(bytes) *
                           costs::kSerializePerByteNs) +
      costs::kMqttFanoutCost * fanout;
  // Event-loop inflation grows with the live session table, not with
  // threads (there is one).
  const double load = 1.0 + costs::kMqttSessionLoadFactor *
                                static_cast<double>(sessions_.size());
  return static_cast<SimTime>(static_cast<double>(demand) * load);
}

void MqttBroker::on_stream_accept(net::StreamConnectionPtr conn) {
  if (crashed_) {
    conn->close();
    return;
  }
  // Session admission: socket buffers + session state on the event loop's
  // heap (no thread spawn — the MQTT wall is heap, far past Narada's).
  if (!host_.heap().allocate(costs::kMqttSessionBytes)) {
    ++stats_.connections_refused;
    GRIDMON_DEBUG("mqtt.broker")
        << "broker " << config_.broker_id << " refused connection (heap)";
    conn->close();
    return;
  }
  ++stats_.connections_accepted;
  // First packet on a fresh connection must be CONNECT; the handler is
  // re-pointed at the session once the client identifies itself. Weak
  // capture: the handler lives inside the connection (self-cycle hazard).
  conn->set_handler(
      1, [this, wconn = std::weak_ptr<net::StreamConnection>(conn)](
             const net::Datagram& dg) {
        auto conn = wconn.lock();
        if (!conn || crashed_) return;
        if (!dg.payload.has_value()) return;
        const auto* maybe = std::any_cast<PacketPtr>(&dg.payload);
        if (maybe == nullptr || !*maybe) return;
        if ((*maybe)->type != PacketType::kConnect) return;
        handle_connect(conn, *maybe);
      });
}

void MqttBroker::handle_connect(const net::StreamConnectionPtr& conn,
                                const PacketPtr& packet) {
  host_.cpu().charge(packet_service_demand(packet_wire_size(*packet), 0));
  const std::string& id = packet->client_id;
  auto it = sessions_.find(id);
  bool resumed = false;
  if (it != sessions_.end()) {
    Session& existing = it->second;
    if (existing.connected) {
      // Client takeover: the old connection is superseded (MQTT allows one
      // connection per client id). Detach first so its close is graceful.
      auto old = std::move(existing.conn);
      existing.conn.reset();
      existing.connected = false;
      host_.heap().release(costs::kMqttSessionBytes);
      if (old && old->open()) old->close();
    }
    if (packet->clean_session) {
      erase_session(id);
      it = sessions_.end();
    } else {
      resumed = true;
    }
  }
  if (it == sessions_.end()) {
    it = sessions_.emplace(id, Session{}).first;
    it->second.client_id = id;
    it->second.offline_queue = core::HistoryBuffer(config_.retention);
  }
  Session& session = it->second;
  session.clean = packet->clean_session;
  session.connected = true;
  session.conn = conn;
  session.keep_alive = packet->keep_alive;
  session.last_seen = host_.sim().now();
  session.will_topic = packet->will_topic;
  session.will_bytes = packet->will_bytes;
  session.will_qos = packet->will_qos;
  session.will_retain = packet->will_retain;
  if (resumed) ++stats_.sessions_resumed;

  // Route subsequent packets through the session; notice ungraceful
  // connection loss (will publication) via the close handler.
  conn->set_handler(
      1,
      [this, id](const net::Datagram& dg) { on_session_packet(id, dg); },
      [this, id, wconn = std::weak_ptr<net::StreamConnection>(conn)] {
        if (crashed_) return;
        const auto it = sessions_.find(id);
        if (it == sessions_.end() || !it->second.connected) return;
        // Only the connection we still consider current counts: a detach
        // (takeover, expiry, crash) already reset session.conn.
        if (it->second.conn != wconn.lock()) return;
        drop_connection(id, /*graceful=*/false);
      });

  Packet ack;
  ack.type = PacketType::kConnAck;
  ack.session_present = resumed;
  conn->send(1, kControlPacketBytes, std::make_shared<const Packet>(ack));

  if (resumed) {
    // Session resumption: re-send the unacknowledged QoS 1/2 window, then
    // drain everything queued while the client was away.
    for (auto& [pid, entry] : session.in_flight) {
      if (entry.awaiting_comp) {
        reply(session, PacketType::kPubRel, pid);
      } else {
        auto dup = std::make_shared<Packet>(*entry.publish);
        dup->duplicate = true;
        entry.publish = dup;
        entry.last_sent = host_.sim().now();
        send_to(session, dup);
      }
      ++stats_.retransmissions;
    }
    std::uint64_t drained = 0;
    std::int64_t drained_bytes = 0;
    session.offline_queue.replay_since(
        0, [&](std::uint64_t, const std::any& payload, std::int64_t bytes) {
          const auto* queued = std::any_cast<PacketPtr>(&payload);
          if (queued == nullptr || !*queued) return;
          mark_packet(*queued, "backfill");
          deliver(session, (*queued)->qos, *queued,
                  /*retained_replay=*/false);
          ++drained;
          drained_bytes += bytes;
        });
    // Reset the queue (releases its retention accounting): everything it
    // held is now in the live in-flight window.
    session.offline_queue = core::HistoryBuffer(config_.retention);
    stats_.backfill_msgs += drained;
    stats_.backfill_bytes += drained_bytes;
  }
}

void MqttBroker::on_session_packet(const std::string& client_id,
                                   const net::Datagram& datagram) {
  if (crashed_) return;
  const auto it = sessions_.find(client_id);
  if (it == sessions_.end() || !it->second.connected) return;
  if (!datagram.payload.has_value()) return;
  const auto* maybe = std::any_cast<PacketPtr>(&datagram.payload);
  if (maybe == nullptr || !*maybe) return;
  const PacketPtr& packet = *maybe;
  Session& session = it->second;
  session.last_seen = host_.sim().now();

  switch (packet->type) {
    case PacketType::kConnect:
      // Duplicate CONNECT on a live session is a protocol error; ignore.
      break;
    case PacketType::kSubscribe: {
      host_.cpu().charge(
          packet_service_demand(packet_wire_size(*packet), 0));
      const int granted = packet->qos;
      bool replaced = false;
      for (auto& [filter, qos] : session.subscriptions) {
        if (filter == packet->topic) {
          qos = granted;
          replaced = true;
          break;
        }
      }
      if (!replaced) {
        session.subscriptions.emplace_back(packet->topic, granted);
        obs::mem_add(obs::MemCategory::kBrokerRouting,
                     subscription_footprint(packet->topic));
      }
      // Keep the trie in lockstep (updates the grant on resubscribe).
      sub_index_.subscribe(packet->topic, session.client_id, &session,
                           granted);
      reply(session, PacketType::kSubAck, packet->packet_id);
      replay_retained(session, packet->topic, granted);
      break;
    }
    case PacketType::kPublish:
      handle_publish(session, packet);
      break;
    case PacketType::kPubRel: {
      // Publisher releases a parked QoS 2 message: deliver exactly once.
      const auto parked = session.inbound_qos2.find(packet->packet_id);
      if (parked != session.inbound_qos2.end()) {
        PacketPtr stored = parked->second;
        session.inbound_qos2.erase(parked);
        obs::mem_sub(obs::MemCategory::kBrokerRouting,
                     parked_footprint(stored));
        ingest_publish(stored);
      }
      reply(session, PacketType::kPubComp, packet->packet_id);
      break;
    }
    case PacketType::kPubAck:
      // Subscriber acknowledged a QoS 1 delivery.
      session.in_flight.erase(packet->packet_id);
      break;
    case PacketType::kPubRec: {
      // Subscriber stored a QoS 2 delivery: release it.
      const auto entry = session.in_flight.find(packet->packet_id);
      if (entry != session.in_flight.end()) {
        entry->second.awaiting_comp = true;
        entry->second.last_sent = host_.sim().now();
      }
      reply(session, PacketType::kPubRel, packet->packet_id);
      break;
    }
    case PacketType::kPubComp:
      session.in_flight.erase(packet->packet_id);
      break;
    case PacketType::kPingReq:
      host_.cpu().charge(costs::kMqttPacketBase);
      reply(session, PacketType::kPingResp, 0);
      break;
    case PacketType::kDisconnect:
      // Graceful: the will is discarded, per the specification.
      drop_connection(client_id, /*graceful=*/true);
      break;
    default:
      break;
  }
}

void MqttBroker::handle_publish(Session& session, const PacketPtr& packet) {
  ++stats_.publishes_received;
  mark_packet(packet, "wire");
  switch (packet->qos) {
    case 0:
      ingest_publish(packet);
      break;
    case 1:
      // At-least-once: acknowledge and ingest every copy — a DUP
      // redelivery whose original made it through becomes a duplicate
      // delivery downstream, exactly the QoS 1 contract.
      reply(session, PacketType::kPubAck, packet->packet_id);
      ingest_publish(packet);
      break;
    default: {
      // Exactly-once: park the message under its packet id until PUBREL.
      // A DUP copy of a parked id acknowledges again without re-parking.
      const auto parked = session.inbound_qos2.find(packet->packet_id);
      if (parked == session.inbound_qos2.end()) {
        session.inbound_qos2.emplace(packet->packet_id, packet);
        obs::mem_add(obs::MemCategory::kBrokerRouting,
                     parked_footprint(packet));
      } else {
        ++stats_.qos2_duplicates_parked;
      }
      reply(session, PacketType::kPubRec, packet->packet_id);
      break;
    }
  }
}

void MqttBroker::ingest_publish(const PacketPtr& packet) {
  if (crashed_) return;
  mark_packet(packet, "ingress");
  if (packet->retain) store_retained(packet);

  // Fan-out is part of the service demand: count matching subscriptions
  // first. One trie walk replaces the per-session filter scan the event
  // loop used to perform; the counted demand model is unchanged.
  sub_index_.match(packet->topic, match_scratch_);
  const int fanout = static_cast<int>(match_scratch_.size());
  const std::int64_t bytes = packet_wire_size(*packet);
  // In-flight publishes hold heap until dispatched (degrades, not refuses).
  const std::int64_t transient = bytes * 2;
  (void)host_.heap().allocate(transient);
  host_.cpu().execute(
      packet_service_demand(bytes, fanout), [this, packet, transient] {
        mark_packet(packet, "match_fanout");
        host_.heap().release(transient);
        if (crashed_) return;
        // Re-match at dispatch: sessions may have come or gone during the
        // service delay (the old code re-walked the table here too). Take
        // the results out of the scratch vector so a re-entrant publish
        // (e.g. a will) cannot clobber them mid-loop.
        sub_index_.match(packet->topic, match_scratch_);
        std::vector<SubscriptionIndex::Match> matches;
        matches.swap(match_scratch_);
        for (const auto& m : matches) {
          // One delivery per session, at its best-matching grant.
          deliver(*static_cast<Session*>(m.handle), m.qos, packet,
                  /*retained_replay=*/false);
        }
        match_scratch_ = std::move(matches);
      });
}

void MqttBroker::deliver(Session& session, int granted_qos,
                         const PacketPtr& publish, bool retained_replay) {
  const int qos = publish->qos < granted_qos ? publish->qos : granted_qos;
  if (qos == 0) {
    if (!session.connected) return;  // fire-and-forget: offline drops
    auto out = std::make_shared<Packet>(*publish);
    out->qos = 0;
    out->retain = retained_replay;
    out->duplicate = false;
    out->packet_id = 0;
    ++stats_.publishes_delivered;
    send_to(session, std::move(out));
    return;
  }
  if (!session.connected) {
    if (session.clean) return;
    // Persistent session: queue for redelivery at resumption, under the
    // retention policy — drop-oldest once the bound is hit, honestly
    // counted instead of growing without limit.
    auto queued = std::make_shared<Packet>(*publish);
    queued->qos = qos;
    queued->retain = retained_replay;
    const std::int64_t bytes = parked_footprint(queued);
    const std::int64_t dropped_before = session.offline_queue.dropped();
    session.offline_queue.append(PacketPtr(std::move(queued)), bytes,
                                 host_.sim().now());
    stats_.queue_dropped += static_cast<std::uint64_t>(
        session.offline_queue.dropped() - dropped_before);
    return;
  }
  auto out = std::make_shared<Packet>(*publish);
  out->qos = qos;
  out->retain = retained_replay;
  out->duplicate = false;
  // Broker-assigned id for the outbound QoS 1/2 window (0 is reserved).
  if (session.next_packet_id == 0) session.next_packet_id = 1;
  out->packet_id = session.next_packet_id++;
  PacketPtr shared = std::move(out);
  session.in_flight[shared->packet_id] =
      InFlightOut{shared, false, host_.sim().now()};
  ++stats_.publishes_delivered;
  send_to(session, shared);
}

void MqttBroker::send_to(Session& session, const PacketPtr& packet) {
  if (!session.conn || !session.conn->open()) return;
  session.conn->send(1, packet_wire_size(*packet), packet);
}

void MqttBroker::reply(Session& session, PacketType type,
                       std::uint16_t packet_id) {
  Packet packet;
  packet.type = type;
  packet.packet_id = packet_id;
  host_.cpu().charge(costs::kMqttPacketBase);
  send_to(session, std::make_shared<const Packet>(packet));
}

void MqttBroker::store_retained(const PacketPtr& packet) {
  const auto it = retained_.find(packet->topic);
  if (it != retained_.end()) {
    obs::mem_sub(obs::MemCategory::kBrokerRouting,
                 parked_footprint(it->second));
    retained_.erase(it);
  }
  // A zero-byte retained publish clears the slot (MQTT semantics).
  if (packet->payload_bytes <= 0) return;
  retained_.emplace(packet->topic, packet);
  obs::mem_add(obs::MemCategory::kBrokerRouting, parked_footprint(packet));
}

void MqttBroker::replay_retained(Session& session, const std::string& filter,
                                 int granted_qos) {
  for (const auto& [topic, packet] : retained_) {
    if (!topic_matches(filter, topic)) continue;
    ++stats_.retained_replayed;
    deliver(session, granted_qos, packet, /*retained_replay=*/true);
  }
}

void MqttBroker::publish_will(Session& session) {
  if (session.will_topic.empty()) return;
  auto will = std::make_shared<Packet>();
  will->type = PacketType::kPublish;
  will->topic = session.will_topic;
  will->qos = session.will_qos;
  will->retain = session.will_retain;
  will->payload_bytes = session.will_bytes;
  will->published_at = host_.sim().now();
  ++stats_.wills_published;
  ingest_publish(std::move(will));
}

void MqttBroker::drop_connection(const std::string& client_id,
                                 bool graceful) {
  const auto it = sessions_.find(client_id);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  if (session.connected) {
    session.connected = false;
    host_.heap().release(costs::kMqttSessionBytes);
    auto conn = std::move(session.conn);
    session.conn.reset();
    if (conn && conn->open()) conn->close();
  }
  if (!graceful) publish_will(session);
  if (session.clean) erase_session(client_id);
}

void MqttBroker::erase_session(const std::string& client_id) {
  const auto it = sessions_.find(client_id);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  for (const auto& [filter, qos] : session.subscriptions) {
    obs::mem_sub(obs::MemCategory::kBrokerRouting,
                 subscription_footprint(filter));
    sub_index_.remove(filter, &session);
  }
  for (const auto& [pid, parked] : session.inbound_qos2) {
    obs::mem_sub(obs::MemCategory::kBrokerRouting, parked_footprint(parked));
  }
  // The offline queue's retention accounting releases in its destructor.
  sessions_.erase(it);
}

void MqttBroker::retransmit_packets() {
  if (crashed_) return;
  const SimTime now = host_.sim().now();
  for (auto& [id, session] : sessions_) {
    if (!session.connected) continue;
    for (auto& [pid, entry] : session.in_flight) {
      if (now - entry.last_sent < config_.retransmit_timeout) continue;
      entry.last_sent = now;
      ++stats_.retransmissions;
      if (entry.awaiting_comp) {
        reply(session, PacketType::kPubRel, pid);
      } else {
        auto dup = std::make_shared<Packet>(*entry.publish);
        dup->duplicate = true;
        entry.publish = dup;
        send_to(session, entry.publish);
      }
    }
  }
}

void MqttBroker::expire_sessions() {
  if (crashed_) return;
  const SimTime now = host_.sim().now();
  std::vector<std::string> expired;
  for (const auto& [id, session] : sessions_) {
    if (!session.connected || session.keep_alive <= 0) continue;
    const auto deadline = static_cast<SimTime>(
        static_cast<double>(session.keep_alive) * config_.keep_alive_grace);
    if (now - session.last_seen > deadline) expired.push_back(id);
  }
  for (const std::string& id : expired) {
    ++stats_.sessions_expired;
    GRIDMON_DEBUG("mqtt.broker") << "session " << id << " keep-alive expired";
    drop_connection(id, /*graceful=*/false);  // publishes the last will
  }
}

}  // namespace gridmon::mqtt
