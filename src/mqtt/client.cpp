#include "mqtt/client.hpp"

#include <algorithm>
#include <utility>

#include "cluster/costs.hpp"
#include "obs/memprof.hpp"

namespace gridmon::mqtt {

namespace costs = cluster::costs;

std::shared_ptr<MqttClient> MqttClient::create(cluster::Host& host,
                                               net::Lan& lan,
                                               net::StreamTransport& streams,
                                               net::Endpoint broker,
                                               net::Endpoint local,
                                               MqttClientOptions options) {
  return std::shared_ptr<MqttClient>(
      new MqttClient(host, lan, streams, broker, local, std::move(options)));
}

MqttClient::MqttClient(cluster::Host& host, net::Lan& lan,
                       net::StreamTransport& streams, net::Endpoint broker,
                       net::Endpoint local, MqttClientOptions options)
    : host_(host),
      lan_(lan),
      streams_(streams),
      broker_(broker),
      local_(local),
      options_(std::move(options)) {
  obs::mem_add(obs::MemCategory::kClientRecords, sizeof(MqttClient));
}

MqttClient::~MqttClient() {
  obs::mem_sub(obs::MemCategory::kClientRecords, sizeof(MqttClient));
}

void MqttClient::notify_ready(bool ok) {
  // One-shot semantics: holding the handler would keep whatever the caller
  // captured (typically its own shared_ptr) alive for the client's whole
  // lifetime — the reference cycle the Narada client leaked under ASan.
  auto callback = std::move(on_ready_);
  on_ready_ = nullptr;
  if (callback) callback(ok);
}

void MqttClient::set_reconnect_policy(ReconnectPolicy policy) {
  reconnect_ = policy;
  reconnect_rng_ = host_.sim()
                       .rng_stream("mqtt.reconnect")
                       .stream((static_cast<std::uint64_t>(local_.node) << 16) |
                               local_.port);
}

void MqttClient::connect(ReadyHandler on_ready) {
  on_ready_ = std::move(on_ready);
  streams_.connect(local_, broker_, [self = weak_from_this()](
                                        net::StreamConnectionPtr conn) {
    auto client = self.lock();
    if (!client) return;
    if (!conn) {
      client->refused_ = true;
      client->notify_ready(false);
      return;
    }
    client->adopt_connection(std::move(conn));
  });
}

void MqttClient::adopt_connection(net::StreamConnectionPtr conn) {
  conn_ = conn;
  auto self = weak_from_this();
  conn->set_handler(
      0,
      [self](const net::Datagram& dg) {
        if (auto c = self.lock()) c->on_packet(dg);
      },
      [self] {
        auto c = self.lock();
        if (!c) return;
        if (c->disconnected_) {
          // We asked for this close (graceful DISCONNECT).
          c->conn_.reset();
          return;
        }
        if (!c->ready_) {
          if (c->reconnecting_) {
            // A reconnect attempt died before its CONNACK (broker still
            // down, or down again): back off and retry.
            c->schedule_reconnect();
            return;
          }
          // Closed before CONNACK: the broker refused us (admission).
          c->refused_ = true;
          c->notify_ready(false);
          return;
        }
        // Established link lost (broker crash, NIC failure). Without a
        // reconnect policy this is permanent — the no-recovery baseline.
        c->ready_ = false;
        c->conn_.reset();
        c->keep_alive_timer_ = sim::PeriodicTimer();
        if (c->reconnect_.enabled) c->schedule_reconnect();
      });
  send_connect();
}

void MqttClient::send_connect() {
  auto connect = std::make_shared<Packet>();
  connect->type = PacketType::kConnect;
  connect->client_id = options_.client_id;
  connect->clean_session = options_.clean_session;
  connect->keep_alive = options_.keep_alive;
  connect->will_topic = options_.will_topic;
  connect->will_bytes = options_.will_bytes;
  connect->will_qos = options_.will_qos;
  connect->will_retain = options_.will_retain;
  host_.cpu().charge(costs::kMqttClientSendBase);
  if (conn_ && conn_->open()) {
    const std::int64_t bytes = packet_wire_size(*connect);
    conn_->send(0, bytes, PacketPtr(std::move(connect)));
  }
}

void MqttClient::schedule_reconnect() {
  if (reconnect_.max_attempts > 0 &&
      reconnect_attempt_ >= reconnect_.max_attempts) {
    reconnecting_ = false;
    return;
  }
  reconnecting_ = true;
  ++reconnect_attempt_;
  ++reconnects_;
  double delay = static_cast<double>(reconnect_.backoff_initial);
  for (int i = 1; i < reconnect_attempt_; ++i) {
    delay *= reconnect_.multiplier;
    if (delay >= static_cast<double>(reconnect_.backoff_max)) break;
  }
  delay = std::min(delay, static_cast<double>(reconnect_.backoff_max));
  if (reconnect_.jitter > 0.0) {
    delay *= 1.0 + reconnect_rng_.uniform(0.0, reconnect_.jitter);
  }
  host_.sim().schedule_after(
      static_cast<SimTime>(delay), [self = weak_from_this()] {
        if (auto c = self.lock()) c->attempt_reconnect();
      });
}

void MqttClient::attempt_reconnect() {
  streams_.connect(local_, broker_, [self = weak_from_this()](
                                        net::StreamConnectionPtr conn) {
    auto c = self.lock();
    if (!c) return;
    if (!conn) {
      // Listener still closed: the broker has not restarted yet.
      c->schedule_reconnect();
      return;
    }
    c->adopt_connection(std::move(conn));
  });
}

void MqttClient::on_connack(const PacketPtr& packet) {
  if (ready_) return;
  ready_ = true;
  const bool was_reconnect = reconnecting_;
  reconnecting_ = false;
  reconnect_attempt_ = 0;
  start_keep_alive();
  notify_ready(true);
  if (was_reconnect) {
    // Session resumption: if the broker came back empty (or we run clean
    // sessions), broker-side state must be rebuilt before anything else.
    if (!packet->session_present && has_subscription_) resubscribe();
    redeliver_in_flight();
  }
  while (!backlog_.empty()) {
    PacketPtr queued = backlog_.front();
    backlog_.pop_front();
    send_packet(std::move(queued));
  }
}

void MqttClient::start_keep_alive() {
  if (options_.keep_alive <= 0) return;
  keep_alive_timer_ = sim::PeriodicTimer(
      host_.sim(), host_.sim().now() + options_.keep_alive,
      options_.keep_alive, [self = weak_from_this()] {
        auto c = self.lock();
        if (!c || !c->ready_) return;
        auto ping = std::make_shared<Packet>();
        ping->type = PacketType::kPingReq;
        c->send_packet(PacketPtr(std::move(ping)));
      });
}

void MqttClient::resubscribe() {
  ++resubscribes_;
  auto sub = std::make_shared<Packet>();
  sub->type = PacketType::kSubscribe;
  sub->topic = subscribed_filter_;
  sub->qos = subscribed_qos_;
  sub->packet_id = next_packet_id_++;
  if (next_packet_id_ == 0) next_packet_id_ = 1;
  send_packet(PacketPtr(std::move(sub)));
}

void MqttClient::redeliver_in_flight() {
  for (auto& [pid, entry] : in_flight_) {
    entry.last_sent = host_.sim().now();
    ++retransmissions_;
    if (entry.awaiting_comp) {
      auto rel = std::make_shared<Packet>();
      rel->type = PacketType::kPubRel;
      rel->packet_id = pid;
      send_packet(PacketPtr(std::move(rel)));
    } else {
      auto dup = std::make_shared<Packet>(*entry.publish);
      dup->duplicate = true;
      entry.publish = dup;
      send_packet(entry.publish);
    }
    // Retransmit checks die while the link is down (otherwise a long
    // no-recovery outage accumulates a timer per lost publish); restart
    // the window's clock now that the link is back.
    if (!entry.timer_armed) {
      entry.timer_armed = true;
      arm_retransmit(pid);
    }
  }
}

void MqttClient::send_packet(PacketPtr packet) {
  if (!ready_ && packet->type != PacketType::kConnect) {
    // A disconnected QoS 1/2 publish is owned by the in-flight window and
    // redelivered at resumption — backlogging it too would double-send.
    // Acknowledgement traffic for broker state that no longer exists is
    // dropped; everything else (QoS 0 publishes, subscribes) queues.
    const bool windowed =
        packet->type == PacketType::kPublish && packet->qos > 0;
    const bool queueable = packet->type == PacketType::kPublish ||
                           packet->type == PacketType::kSubscribe;
    if (queueable && !windowed) backlog_.push_back(std::move(packet));
    return;
  }
  if (conn_ && conn_->open()) {
    conn_->send(0, packet_wire_size(*packet), packet);
  }
}

void MqttClient::subscribe(const std::string& filter, int qos,
                           DeliveryListener listener) {
  subscribed_filter_ = filter;
  subscribed_qos_ = qos;
  has_subscription_ = true;
  listener_ = std::move(listener);
  auto sub = std::make_shared<Packet>();
  sub->type = PacketType::kSubscribe;
  sub->topic = filter;
  sub->qos = qos;
  sub->packet_id = next_packet_id_++;
  if (next_packet_id_ == 0) next_packet_id_ = 1;
  send_packet(PacketPtr(std::move(sub)));
}

void MqttClient::publish(const std::string& topic, std::int64_t payload_bytes,
                         int qos, bool retain, std::string message_id,
                         SendCallback on_sent) {
  auto packet = std::make_shared<Packet>();
  packet->type = PacketType::kPublish;
  packet->topic = topic;
  packet->qos = qos;
  packet->retain = retain;
  packet->payload_bytes = payload_bytes;
  packet->message_id = std::move(message_id);
  packet->published_at = host_.sim().now();
  if (qos > 0) {
    packet->packet_id = next_packet_id_++;
    if (next_packet_id_ == 0) next_packet_id_ = 1;
  }

  const std::int64_t bytes = packet_wire_size(*packet);
  const SimTime demand =
      costs::kMqttClientSendBase +
      static_cast<SimTime>(static_cast<double>(bytes) *
                           costs::kSerializePerByteNs);
  host_.cpu().execute(demand, [self = shared_from_this(),
                               packet = PacketPtr(std::move(packet)),
                               on_sent = std::move(on_sent)] {
    if (packet->qos > 0) {
      self->in_flight_[packet->packet_id] =
          InFlightPub{packet, false, true, self->host_.sim().now()};
      self->arm_retransmit(packet->packet_id);
    }
    self->send_packet(packet);
    ++self->published_;
    if (on_sent) on_sent(self->host_.sim().now());
  });
}

void MqttClient::arm_retransmit(std::uint16_t packet_id) {
  host_.sim().schedule_after(
      options_.retransmit_timeout, [self = weak_from_this(), packet_id] {
        auto c = self.lock();
        if (!c) return;
        const auto it = c->in_flight_.find(packet_id);
        if (it == c->in_flight_.end()) return;
        if (!c->ready_) {
          // Link is down: the check dies here; redeliver_in_flight()
          // restarts it at session resumption.
          it->second.timer_armed = false;
          return;
        }
        it->second.last_sent = c->host_.sim().now();
        ++c->retransmissions_;
        if (it->second.awaiting_comp) {
          auto rel = std::make_shared<Packet>();
          rel->type = PacketType::kPubRel;
          rel->packet_id = packet_id;
          c->send_packet(PacketPtr(std::move(rel)));
        } else {
          auto dup = std::make_shared<Packet>(*it->second.publish);
          dup->duplicate = true;
          it->second.publish = dup;
          c->send_packet(it->second.publish);
        }
        c->arm_retransmit(packet_id);
      });
}

void MqttClient::disconnect() {
  if (!ready_) return;
  auto bye = std::make_shared<Packet>();
  bye->type = PacketType::kDisconnect;
  send_packet(PacketPtr(std::move(bye)));
  // The broker closes the link once it processes the DISCONNECT (closing
  // here would drop the in-flight packet — stream delivery checks the
  // connection is still open on arrival).
  disconnected_ = true;
  ready_ = false;
  keep_alive_timer_ = sim::PeriodicTimer();
}

void MqttClient::on_packet(const net::Datagram& datagram) {
  if (!datagram.payload.has_value()) return;
  const auto* maybe = std::any_cast<PacketPtr>(&datagram.payload);
  if (maybe == nullptr || !*maybe) return;
  const PacketPtr& packet = *maybe;
  const SimTime arrived_at = host_.sim().now();

  switch (packet->type) {
    case PacketType::kConnAck:
      on_connack(packet);
      break;
    case PacketType::kPublish:
      handle_publish(packet, arrived_at);
      break;
    case PacketType::kPubAck:
      in_flight_.erase(packet->packet_id);
      break;
    case PacketType::kPubRec: {
      const auto it = in_flight_.find(packet->packet_id);
      if (it != in_flight_.end()) {
        it->second.awaiting_comp = true;
        it->second.last_sent = host_.sim().now();
      }
      auto rel = std::make_shared<Packet>();
      rel->type = PacketType::kPubRel;
      rel->packet_id = packet->packet_id;
      host_.cpu().charge(costs::kMqttClientSendBase);
      send_packet(PacketPtr(std::move(rel)));
      break;
    }
    case PacketType::kPubComp:
      in_flight_.erase(packet->packet_id);
      break;
    case PacketType::kPubRel:
      // Broker released an inbound QoS 2 delivery: forget the dedup id.
      inbound_qos2_.erase(packet->packet_id);
      {
        auto comp = std::make_shared<Packet>();
        comp->type = PacketType::kPubComp;
        comp->packet_id = packet->packet_id;
        host_.cpu().charge(costs::kMqttClientSendBase);
        send_packet(PacketPtr(std::move(comp)));
      }
      break;
    case PacketType::kSubAck:
    case PacketType::kPingResp:
    default:
      break;
  }
}

void MqttClient::handle_publish(const PacketPtr& packet, SimTime arrived_at) {
  bool deliver = true;
  switch (packet->qos) {
    case 0:
      break;
    case 1: {
      auto ack = std::make_shared<Packet>();
      ack->type = PacketType::kPubAck;
      ack->packet_id = packet->packet_id;
      host_.cpu().charge(costs::kMqttClientSendBase);
      send_packet(PacketPtr(std::move(ack)));
      if (packet->duplicate) ++duplicates_received_;
      break;
    }
    default: {
      // Exactly-once: deliver on first sight of the packet id, then hold
      // the id until the broker's PUBREL releases it.
      if (inbound_qos2_.contains(packet->packet_id)) {
        deliver = false;
        ++duplicates_received_;
      } else {
        inbound_qos2_.insert(packet->packet_id);
      }
      auto rec = std::make_shared<Packet>();
      rec->type = PacketType::kPubRec;
      rec->packet_id = packet->packet_id;
      host_.cpu().charge(costs::kMqttClientSendBase);
      send_packet(PacketPtr(std::move(rec)));
      break;
    }
  }
  if (!deliver) return;
  const SimTime demand =
      costs::kMqttClientReceiveBase +
      static_cast<SimTime>(static_cast<double>(packet->payload_bytes) *
                           costs::kSerializePerByteNs);
  auto self = shared_from_this();
  host_.cpu().execute(demand, [self, packet, arrived_at] {
    ++self->received_;
    if (self->listener_) self->listener_(packet, arrived_at);
  });
}

}  // namespace gridmon::mqtt
