// MQTT client: the endpoint an edge device (or gateway) holds.
//
// Each simulated generator owns one client. A client CONNECTs to the
// broker with a deterministic client id, keeps the link alive with
// PINGREQ, subscribes with topic filters, and publishes at QoS 0/1/2:
//
//  - QoS 1 publishes are retransmitted with DUP until PUBACKed
//    (at-least-once, client-side redelivery timer);
//  - QoS 2 publishes run the PUBREC/PUBREL/PUBCOMP handshake
//    (exactly-once), with the same retransmission discipline;
//  - inbound QoS 2 deliveries are deduplicated by packet id, so the
//    application listener sees each exactly once.
//
// Recovery mirrors the Narada client: an optional reconnect policy with
// capped exponential backoff and deterministic jitter. After a reconnect
// the client resumes its session — if the broker kept it (CONNACK
// session_present) only the in-flight QoS 1/2 window is redelivered; if
// the broker came back empty, the client resubscribes first, then
// redelivers, then flushes whatever the application published during the
// outage.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "cluster/host.hpp"
#include "mqtt/packets.hpp"
#include "net/lan.hpp"
#include "net/stream.hpp"
#include "util/rng.hpp"

namespace gridmon::mqtt {

/// Client-side recovery knob (same shape as the Narada policy): when an
/// established broker link drops, retry with capped exponential backoff.
/// Jitter is deterministic — drawn from a named kernel RNG stream keyed by
/// the client's endpoint.
struct ReconnectPolicy {
  bool enabled = false;
  SimTime backoff_initial = units::milliseconds(500);
  SimTime backoff_max = units::seconds(8);
  double multiplier = 2.0;
  double jitter = 0.2;
  int max_attempts = 0;  ///< 0 = keep trying until the run ends
};

struct MqttClientOptions {
  std::string client_id;  ///< deterministic, e.g. "gen-0042"
  bool clean_session = true;
  SimTime keep_alive = units::seconds(30);  ///< 0 = no keep-alive contract
  /// Last will registered at CONNECT (empty topic = none).
  std::string will_topic;
  std::int64_t will_bytes = 0;
  int will_qos = 0;
  bool will_retain = false;
  /// Unacknowledged QoS 1/2 publishes are re-sent (DUP) after this long.
  SimTime retransmit_timeout = units::seconds(2);
};

class MqttClient : public std::enable_shared_from_this<MqttClient> {
 public:
  /// ok=false means the broker refused the connection.
  using ReadyHandler = std::function<void(bool ok)>;
  /// `arrived_at` is when the packet reached this host; the callback runs
  /// after the client library's receive-path CPU.
  using DeliveryListener =
      std::function<void(const PacketPtr&, SimTime arrived_at)>;
  /// `after_sending` is when the publish call returned.
  using SendCallback = std::function<void(SimTime after_sending)>;

  static std::shared_ptr<MqttClient> create(cluster::Host& host,
                                            net::Lan& lan,
                                            net::StreamTransport& streams,
                                            net::Endpoint broker,
                                            net::Endpoint local,
                                            MqttClientOptions options);
  ~MqttClient();

  /// Establish the link (CONNECT/CONNACK). Packets issued before
  /// readiness are queued and flushed on CONNACK.
  void connect(ReadyHandler on_ready);

  /// Subscribe with a topic filter ('+'/'#' wildcards) at `qos`.
  void subscribe(const std::string& filter, int qos,
                 DeliveryListener listener);

  /// Publish `payload_bytes` to `topic` at `qos`. `message_id` identifies
  /// the sample end to end (metrics/obs); headers are stamped here.
  void publish(const std::string& topic, std::int64_t payload_bytes, int qos,
               bool retain, std::string message_id,
               SendCallback on_sent = nullptr);

  /// Graceful DISCONNECT: the broker discards the will.
  void disconnect();

  /// Install the recovery policy (call before or after connect). Without
  /// one a lost link is permanent — the no-recovery baseline.
  void set_reconnect_policy(ReconnectPolicy policy);

  [[nodiscard]] bool ready() const { return ready_; }
  [[nodiscard]] bool refused() const { return refused_; }
  [[nodiscard]] std::uint64_t published() const { return published_; }
  [[nodiscard]] std::uint64_t received() const { return received_; }
  [[nodiscard]] std::uint64_t duplicates_received() const {
    return duplicates_received_;
  }
  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_;
  }
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }
  [[nodiscard]] std::uint64_t resubscribes() const { return resubscribes_; }
  [[nodiscard]] net::Endpoint local() const { return local_; }

 private:
  struct InFlightPub {
    PacketPtr publish;
    bool awaiting_comp = false;  ///< QoS 2: PUBREC seen, PUBREL sent
    bool timer_armed = false;    ///< a retransmit check is scheduled
    SimTime last_sent = 0;
  };

  MqttClient(cluster::Host& host, net::Lan& lan,
             net::StreamTransport& streams, net::Endpoint broker,
             net::Endpoint local, MqttClientOptions options);

  void adopt_connection(net::StreamConnectionPtr conn);
  void send_connect();
  void send_packet(PacketPtr packet);
  void on_packet(const net::Datagram& datagram);
  void handle_publish(const PacketPtr& packet, SimTime arrived_at);
  void on_connack(const PacketPtr& packet);
  void notify_ready(bool ok);
  void schedule_reconnect();
  void attempt_reconnect();
  void resubscribe();
  /// Redeliver the unacknowledged QoS 1/2 window (DUP) after resumption.
  void redeliver_in_flight();
  void arm_retransmit(std::uint16_t packet_id);
  void start_keep_alive();

  cluster::Host& host_;
  net::Lan& lan_;
  net::StreamTransport& streams_;
  net::Endpoint broker_;
  net::Endpoint local_;
  MqttClientOptions options_;

  net::StreamConnectionPtr conn_;
  bool ready_ = false;
  bool refused_ = false;
  bool disconnected_ = false;  ///< graceful DISCONNECT requested
  ReadyHandler on_ready_;
  std::deque<PacketPtr> backlog_;

  std::string subscribed_filter_;
  int subscribed_qos_ = 0;
  bool has_subscription_ = false;
  DeliveryListener listener_;

  /// Outbound QoS 1/2 window, keyed by client-assigned packet id.
  std::map<std::uint16_t, InFlightPub> in_flight_;
  /// Inbound QoS 2 packet ids seen but not yet released (dedup).
  std::set<std::uint16_t> inbound_qos2_;
  std::uint16_t next_packet_id_ = 1;

  sim::PeriodicTimer keep_alive_timer_;

  // Recovery state.
  ReconnectPolicy reconnect_;
  util::Rng reconnect_rng_;
  int reconnect_attempt_ = 0;
  bool reconnecting_ = false;
  std::uint64_t reconnects_ = 0;
  std::uint64_t resubscribes_ = 0;

  std::uint64_t published_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t duplicates_received_ = 0;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace gridmon::mqtt
