// MQTT control packets exchanged on client↔broker links.
//
// Carried as shared_ptr payloads through the simulated stream transport;
// the fields below are what the real 3.1.1 wire format would serialise.
// Payloads are modelled by size only (the grid samples are opaque binary
// blobs), plus model-level metadata (message_id, published_at) that the
// metrics and obs layers key on — the moral equivalent of the JMS headers
// the Narada model carries.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/units.hpp"

namespace gridmon::mqtt {

enum class PacketType {
  kConnect,
  kConnAck,
  kSubscribe,
  kSubAck,
  kPublish,
  kPubAck,   ///< QoS 1 acknowledgement
  kPubRec,   ///< QoS 2 step 1: receiver stored the message
  kPubRel,   ///< QoS 2 step 2: sender releases it for delivery
  kPubComp,  ///< QoS 2 step 3: handshake complete
  kPingReq,
  kPingResp,
  kDisconnect,
};

struct Packet {
  PacketType type = PacketType::kPublish;

  // kConnect
  std::string client_id;
  bool clean_session = true;
  SimTime keep_alive = 0;        ///< 0 = no keep-alive contract
  std::string will_topic;        ///< empty = no last-will registered
  std::int64_t will_bytes = 0;
  int will_qos = 0;
  bool will_retain = false;

  // kConnAck
  bool session_present = false;

  // kSubscribe (topic = filter, qos = requested max) / kSubAck (granted)
  // kPublish (topic = name, qos/retain/duplicate = header flags)
  std::string topic;
  int qos = 0;
  bool retain = false;
  bool duplicate = false;        ///< DUP: this is a redelivery
  std::uint16_t packet_id = 0;   ///< QoS > 0 flows and SUBSCRIBE
  std::int64_t payload_bytes = 0;

  // Model metadata (not wire fields). message_id identifies the sample end
  // to end ("ID:node-port-seq"); published_at is the publisher's stamp.
  std::string message_id;
  SimTime published_at = 0;
};

using PacketPtr = std::shared_ptr<const Packet>;

/// Fixed header (control type + remaining length).
constexpr std::int64_t kFixedHeaderBytes = 2;
/// PUBACK/PUBREC/PUBREL/PUBCOMP/PINGREQ/PINGRESP/DISCONNECT/CONNACK.
constexpr std::int64_t kControlPacketBytes = 4;
/// CONNECT variable header: protocol name + level + flags + keep-alive.
constexpr std::int64_t kConnectOverheadBytes = 12;

[[nodiscard]] inline std::int64_t packet_wire_size(const Packet& packet) {
  switch (packet.type) {
    case PacketType::kPublish:
      return kFixedHeaderBytes + 2 +
             static_cast<std::int64_t>(packet.topic.size()) +
             (packet.qos > 0 ? 2 : 0) + packet.payload_bytes;
    case PacketType::kConnect: {
      std::int64_t size = kFixedHeaderBytes + kConnectOverheadBytes +
                          static_cast<std::int64_t>(packet.client_id.size());
      if (!packet.will_topic.empty()) {
        size += 2 + static_cast<std::int64_t>(packet.will_topic.size()) +
                packet.will_bytes;
      }
      return size;
    }
    case PacketType::kSubscribe:
    case PacketType::kSubAck:
      return kFixedHeaderBytes + 2 +
             static_cast<std::int64_t>(packet.topic.size()) + 1;
    default:
      return kControlPacketBytes;
  }
}

}  // namespace gridmon::mqtt
