#include "mqtt/sub_index.hpp"

#include <algorithm>

#include "obs/memprof.hpp"

namespace gridmon::mqtt {

SubscriptionIndex::~SubscriptionIndex() {
  if (footprint_ != 0) {
    obs::mem_sub(obs::MemCategory::kMqttSubIndex, footprint_);
  }
}

void SubscriptionIndex::account(std::int64_t delta) {
  footprint_ += delta;
  obs::mem_add(obs::MemCategory::kMqttSubIndex, delta);
}

std::uint32_t SubscriptionIndex::intern(std::string_view level) {
  const std::int64_t before = intern_.bytes();
  const util::StringTable::Id id = intern_.intern(level);
  account(intern_.bytes() - before);  // zero when already interned
  return id;
}

const SubscriptionIndex::Node* SubscriptionIndex::literal_child(
    const Node& node, std::string_view level) const {
  const util::StringTable::Id want = intern_.find(level);
  if (want == util::StringTable::kInvalidId) return nullptr;
  for (const auto& [id, child] : node.children) {
    if (id == want) return child.get();
  }
  return nullptr;
}

std::vector<SubscriptionIndex::Entry>* SubscriptionIndex::terminal(
    std::string_view filter, bool create) {
  // topic_matches() never matches an empty filter; store nothing.
  if (filter.empty()) return nullptr;
  Node* node = &root_;
  std::string_view rest = filter;
  bool more = true;
  while (more) {
    std::string_view level;
    const auto slash = rest.find('/');
    if (slash == std::string_view::npos) {
      level = rest;
      more = false;
    } else {
      level = rest.substr(0, slash);
      rest = rest.substr(slash + 1);
    }
    if (level == "#") {
      // '#' consumes everything that follows. A trailing '#' also matches
      // the parent topic itself; a (tolerated-but-invalid) mid-filter '#'
      // matches only a non-empty remainder — see topic_matches().
      return more ? &node->hash_loose : &node->hash_strict;
    }
    if (level == "+") {
      if (node->plus == nullptr) {
        if (!create) return nullptr;
        node->plus = std::make_unique<Node>();
        account(static_cast<std::int64_t>(sizeof(Node)));
      }
      node = node->plus.get();
      continue;
    }
    if (!create) {
      Node* next = nullptr;
      const util::StringTable::Id want = intern_.find(level);
      if (want != util::StringTable::kInvalidId) {
        for (auto& [id, child] : node->children) {
          if (id == want) {
            next = child.get();
            break;
          }
        }
      }
      if (next == nullptr) return nullptr;
      node = next;
      continue;
    }
    const std::uint32_t id = intern(level);
    Node* next = nullptr;
    for (auto& [cid, child] : node->children) {
      if (cid == id) {
        next = child.get();
        break;
      }
    }
    if (next == nullptr) {
      node->children.emplace_back(id, std::make_unique<Node>());
      next = node->children.back().second.get();
      account(static_cast<std::int64_t>(sizeof(Node) +
                                        sizeof(node->children.back())));
    }
    node = next;
  }
  return &node->entries;
}

void SubscriptionIndex::subscribe(std::string_view filter,
                                  const std::string& client, void* handle,
                                  int qos) {
  std::vector<Entry>* list = terminal(filter, /*create=*/true);
  if (list == nullptr) return;
  for (Entry& entry : *list) {
    if (entry.handle == handle) {
      entry.qos = qos;  // replace-on-resubscribe
      return;
    }
  }
  // Keep each list sorted by client id so match() can emit session-map
  // order without sorting the (possibly fleet-sized) result.
  const auto at = std::upper_bound(
      list->begin(), list->end(), client,
      [](const std::string& c, const Entry& e) { return c < *e.client; });
  list->insert(at, Entry{&client, handle, qos});
  ++entry_count_;
  account(static_cast<std::int64_t>(sizeof(Entry)));
}

void SubscriptionIndex::remove(std::string_view filter, void* handle) {
  std::vector<Entry>* list = terminal(filter, /*create=*/false);
  if (list == nullptr) return;
  for (auto it = list->begin(); it != list->end(); ++it) {
    if (it->handle == handle) {
      list->erase(it);
      --entry_count_;
      account(-static_cast<std::int64_t>(sizeof(Entry)));
      return;
    }
  }
}

void SubscriptionIndex::clear() {
  root_ = Node{};
  intern_ = util::StringTable{};
  entry_count_ = 0;
  if (footprint_ != 0) {
    obs::mem_sub(obs::MemCategory::kMqttSubIndex, footprint_);
    footprint_ = 0;
  }
}

void SubscriptionIndex::match(std::string_view topic,
                              std::vector<Match>& out) const {
  out.clear();
  if (topic.empty()) return;
  // Root-level wildcard edges never match broker-internal topics.
  const bool internal = topic.front() == '$';

  // Split the topic into levels once (same tokenization as topic.cpp:
  // "a//b" has an empty middle level, "a/" a trailing one).
  std::vector<std::string_view> levels;
  levels.reserve(8);
  std::string_view rest = topic;
  for (;;) {
    const auto slash = rest.find('/');
    if (slash == std::string_view::npos) {
      levels.push_back(rest);
      break;
    }
    levels.push_back(rest.substr(0, slash));
    rest = rest.substr(slash + 1);
  }

  // Entry lists are individually sorted by client id; count the lists that
  // contribute so the common single-list publish (e.g. a whole fleet on
  // 'powergrid/#') skips the final sort.
  std::size_t lists_collected = 0;
  const auto collect = [&out, &lists_collected](const std::vector<Entry>& list) {
    if (list.empty()) return;
    ++lists_collected;
    for (const Entry& e : list) out.push_back(Match{e.client, e.handle, e.qos});
  };

  struct Frame {
    const Node* node;
    std::size_t idx;
  };
  std::vector<Frame> stack;
  stack.reserve(levels.size() + 4);
  stack.push_back(Frame{&root_, 0});
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node& node = *frame.node;
    const bool wildcards_hidden = internal && frame.node == &root_;
    if (frame.idx == levels.size()) {
      // Topic exhausted here: filters ending at this node match, and so
      // does a trailing '#' one level below ("sport/#" matches "sport").
      collect(node.entries);
      if (!wildcards_hidden) collect(node.hash_strict);
      continue;
    }
    // At least one level remains: any '#' filter at this node matches,
    // including the mid-filter form.
    if (!wildcards_hidden) {
      collect(node.hash_strict);
      collect(node.hash_loose);
    }
    if (const Node* lit = literal_child(node, levels[frame.idx])) {
      stack.push_back(Frame{lit, frame.idx + 1});
    }
    if (node.plus != nullptr && !wildcards_hidden) {
      stack.push_back(Frame{node.plus.get(), frame.idx + 1});
    }
  }

  // One entry per session at its best grant, ordered by client id — the
  // order the broker's session-map walk used to produce. A single
  // contributing list is already in that order.
  if (lists_collected > 1) {
    std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
      return *a.client < *b.client;
    });
  }
  std::size_t w = 0;
  for (std::size_t r = 0; r < out.size(); ++r) {
    if (w > 0 && out[w - 1].handle == out[r].handle) {
      if (out[r].qos > out[w - 1].qos) out[w - 1].qos = out[r].qos;
    } else {
      out[w++] = out[r];
    }
  }
  out.resize(w);
}

}  // namespace gridmon::mqtt
