// MQTT topic names and topic filters.
//
// Topics are '/'-separated level strings ("powergrid/feeder7/voltage");
// filters may use the two MQTT wildcards: '+' matches exactly one level,
// '#' matches any number of trailing levels (including zero) and must be
// the final level of the filter. Filters whose first level is a wildcard
// do not match topics beginning with '$' (broker-internal topics), per the
// MQTT 3.1.1 specification.
#pragma once

#include <string_view>

namespace gridmon::mqtt {

/// True if `filter` is a well-formed topic filter: non-empty, '#' only as
/// the whole final level, '+' only as a whole level.
[[nodiscard]] bool valid_filter(std::string_view filter);

/// True if a message published to `topic` matches `filter`. `topic` is a
/// concrete topic name (no wildcards).
[[nodiscard]] bool topic_matches(std::string_view filter,
                                 std::string_view topic);

}  // namespace gridmon::mqtt
