// Subscription index: a topic trie over the broker's filter table.
//
// The broker's publish path used to walk every session's filter list and
// run topic_matches() per filter — twice per publish (once to count the
// fan-out for the service-demand model, once to deliver). That scan is
// O(sessions × filters) per publish, and at 4000 sessions it dominates
// the event loop. The index stores each filter once along its '/'-split
// level path, with dedicated '+' and '#' edges, so one walk of the topic's
// levels finds every matching subscription.
//
// Semantics contract: match() returns exactly the sessions for which
// topic_matches(filter, topic) holds for at least one of the session's
// filters — including the '$'-topic rule (root-level wildcards never match
// broker-internal topics), "sport/#" matching "sport" itself, and the
// tolerated-but-invalid mid-filter '#' ("a/#/b"), which topic_matches
// treats as matching any non-empty remainder but not exhaustion. Results
// are deduplicated to one entry per session at its best (maximum) granted
// QoS, ordered by client id — the same order the broker's session-map walk
// produced.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/intern.hpp"

namespace gridmon::mqtt {

class SubscriptionIndex {
 public:
  /// One matched session: its best-matching grant and the opaque handle
  /// registered at subscribe time (the broker's Session*).
  struct Match {
    const std::string* client = nullptr;
    void* handle = nullptr;
    int qos = 0;
  };

  SubscriptionIndex() = default;
  ~SubscriptionIndex();
  SubscriptionIndex(const SubscriptionIndex&) = delete;
  SubscriptionIndex& operator=(const SubscriptionIndex&) = delete;

  /// Register `filter` for the session identified by `handle`. A repeat
  /// subscribe for the same (filter, handle) updates the granted QoS in
  /// place (MQTT replace-on-resubscribe). `client` must outlive the entry
  /// (the broker's session map has stable nodes).
  void subscribe(std::string_view filter, const std::string& client,
                 void* handle, int qos);

  /// Remove one (filter, handle) registration; no-op if absent.
  void remove(std::string_view filter, void* handle);

  /// Drop everything (broker crash).
  void clear();

  /// All sessions with at least one filter matching `topic`, one entry per
  /// session at its maximum granted QoS, ordered by client id. Reuses
  /// `out`'s capacity.
  void match(std::string_view topic, std::vector<Match>& out) const;

  [[nodiscard]] std::size_t entry_count() const { return entry_count_; }
  /// Bytes held live (nodes + entries + interned level strings), mirrored
  /// into the mem_sub_index profile category by the update methods.
  [[nodiscard]] std::int64_t footprint_bytes() const { return footprint_; }

 private:
  struct Entry {
    const std::string* client;
    void* handle;
    int qos;
  };

  struct Node {
    /// Literal children, keyed by interned level id (small: linear scan).
    std::vector<std::pair<std::uint32_t, std::unique_ptr<Node>>> children;
    std::unique_ptr<Node> plus;      ///< '+' edge (any single level)
    std::vector<Entry> entries;      ///< filters ending at this node
    std::vector<Entry> hash_strict;  ///< "<prefix>/#" — also matches prefix
    std::vector<Entry> hash_loose;   ///< mid-filter '#' — remainder only
  };

  /// Which terminal list a filter lands in, resolved by walking (and
  /// optionally creating) its level path. Null when absent and !create.
  std::vector<Entry>* terminal(std::string_view filter, bool create);

  [[nodiscard]] std::uint32_t intern(std::string_view level);
  [[nodiscard]] const Node* literal_child(const Node& node,
                                          std::string_view level) const;

  void account(std::int64_t delta);

  Node root_;
  /// Level string → id. Ids index nothing outside children keys; the
  /// table's contiguous arena owns the interned storage.
  util::StringTable intern_;
  std::size_t entry_count_ = 0;
  std::int64_t footprint_ = 0;
};

}  // namespace gridmon::mqtt
