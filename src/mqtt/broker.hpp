// MQTT-style message broker.
//
// One MqttBroker runs on one Host as a single-process event loop (no
// thread per connection — sessions cost heap, not stacks, so the broker's
// admission wall sits far beyond Narada's ~4000-thread OOM). It speaks a
// minimal deterministic MQTT 3.1.1 subset:
//
//  - CONNECT / CONNACK with deterministic client ids, clean and persistent
//    sessions (a persistent session keeps its subscriptions, queued
//    messages and in-flight QoS state across disconnects; CONNACK reports
//    session_present so the client knows whether to resubscribe);
//  - keep-alive: a session silent for 1.5 × its keep-alive interval is
//    expired — its last-will message (registered at CONNECT) is published;
//  - SUBSCRIBE with topic filters ('+' one level, '#' trailing levels);
//  - PUBLISH at QoS 0 (fire-and-forget), QoS 1 (PUBACK, at-least-once:
//    DUP redeliveries are re-ingested), QoS 2 (PUBREC/PUBREL/PUBCOMP,
//    exactly-once: duplicates parked by packet id until released);
//  - retained messages: the latest retained publish per topic is replayed
//    to new matching subscribers (zero-byte retained publish clears it);
//  - unacknowledged QoS 1/2 deliveries are re-sent with DUP on a periodic
//    retransmission sweep.
//
// crash() models a broker-process kill: every connection is torn down and
// all in-memory state — sessions, retained store, in-flight windows — is
// lost; restart() comes back empty, so recovery depends on the clients
// (reconnect, resubscribe, redeliver their own in-flight QoS 1/2 windows).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/host.hpp"
#include "core/history.hpp"
#include "mqtt/packets.hpp"
#include "mqtt/sub_index.hpp"
#include "net/lan.hpp"
#include "net/stream.hpp"

namespace gridmon::mqtt {

struct MqttBrokerConfig {
  net::Endpoint endpoint;
  int broker_id = 0;
  /// Unacknowledged QoS 1/2 deliveries are re-sent (DUP) once they are
  /// older than `retransmit_timeout`, checked every `retransmit_sweep`.
  SimTime retransmit_timeout = units::seconds(4);
  SimTime retransmit_sweep = units::seconds(1);
  /// Keep-alive sessions expire after `keep_alive_grace` × keep-alive of
  /// silence (1.5 per the MQTT specification).
  double keep_alive_grace = 1.5;
  /// Retention policy bounding each persistent session's offline queue
  /// (QoS 1/2 messages parked while the client is away). Drop-oldest
  /// evictions are counted in `queue_dropped` — the fix for the formerly
  /// unbounded clean_session=false queue growth.
  core::RetentionConfig retention;
};

struct MqttBrokerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_refused = 0;
  std::uint64_t sessions_resumed = 0;     ///< CONNACK session_present=1
  std::uint64_t publishes_received = 0;   ///< PUBLISH packets from clients
  std::uint64_t publishes_delivered = 0;  ///< deliveries to subscribers
  std::uint64_t qos2_duplicates_parked = 0;  ///< exactly-once dedup hits
  std::uint64_t retained_replayed = 0;    ///< retained sends on subscribe
  std::uint64_t wills_published = 0;      ///< keep-alive expiry last-wills
  std::uint64_t sessions_expired = 0;
  std::uint64_t retransmissions = 0;      ///< broker-side DUP re-sends
  std::uint64_t crashes = 0;
  std::uint64_t queue_dropped = 0;   ///< offline-queue retention evictions
  std::uint64_t backfill_msgs = 0;   ///< offline-queue drains at resumption
  std::int64_t backfill_bytes = 0;   ///< bytes of those drained deliveries
};

class MqttBroker {
 public:
  MqttBroker(cluster::Host& host, net::Lan& lan,
             net::StreamTransport& streams, MqttBrokerConfig config);
  ~MqttBroker();

  MqttBroker(const MqttBroker&) = delete;
  MqttBroker& operator=(const MqttBroker&) = delete;

  /// Begin listening and start the retransmission / keep-alive sweeps.
  void start();

  /// Fault injection: kill the broker process. Every client connection is
  /// torn down and all soft state (sessions, retained messages, in-flight
  /// QoS windows) is lost.
  void crash();
  /// Bring a crashed broker back up, empty: clients must reconnect,
  /// resubscribe and redeliver their own in-flight messages.
  void restart();
  [[nodiscard]] bool crashed() const { return crashed_; }

  [[nodiscard]] const MqttBrokerStats& stats() const { return stats_; }
  [[nodiscard]] cluster::Host& host() { return host_; }
  [[nodiscard]] net::Endpoint endpoint() const { return config_.endpoint; }
  [[nodiscard]] int session_count() const {
    return static_cast<int>(sessions_.size());
  }
  [[nodiscard]] int retained_count() const {
    return static_cast<int>(retained_.size());
  }
  [[nodiscard]] int subscription_count() const;

 private:
  /// Broker→subscriber QoS 1/2 delivery awaiting its acknowledgement.
  struct InFlightOut {
    PacketPtr publish;       ///< the kPublish packet (packet_id assigned)
    bool awaiting_comp = false;  ///< QoS 2: PUBREC seen, waiting on PUBCOMP
    SimTime last_sent = 0;
  };

  struct Session {
    std::string client_id;
    bool clean = true;
    bool connected = false;
    net::StreamConnectionPtr conn;
    SimTime keep_alive = 0;
    SimTime last_seen = 0;
    // Last will, registered at CONNECT, published on ungraceful loss.
    std::string will_topic;
    std::int64_t will_bytes = 0;
    int will_qos = 0;
    bool will_retain = false;
    /// (filter, granted max QoS), replace-on-resubscribe.
    std::vector<std::pair<std::string, int>> subscriptions;
    /// Outbound QoS 1/2 window, keyed by broker-assigned packet id.
    std::map<std::uint16_t, InFlightOut> in_flight;
    /// QoS 1/2 messages queued while a persistent session is offline,
    /// bounded by the broker's retention policy (kHistory-accounted;
    /// evictions count into stats_.queue_dropped).
    core::HistoryBuffer offline_queue;
    /// Inbound QoS 2 messages parked until PUBREL (exactly-once dedup).
    std::map<std::uint16_t, PacketPtr> inbound_qos2;
    std::uint16_t next_packet_id = 1;
  };

  void on_stream_accept(net::StreamConnectionPtr conn);
  void handle_connect(const net::StreamConnectionPtr& conn,
                      const PacketPtr& packet);
  void on_session_packet(const std::string& client_id,
                         const net::Datagram& datagram);
  void handle_publish(Session& session, const PacketPtr& packet);
  /// Route a publish to matching subscribers (after CPU service time).
  void ingest_publish(const PacketPtr& packet);
  void deliver(Session& session, int granted_qos, const PacketPtr& publish,
               bool retained_replay);
  void send_to(Session& session, const PacketPtr& packet);
  void reply(Session& session, PacketType type, std::uint16_t packet_id);
  /// Publish the session's last will (keep-alive expiry / ungraceful drop).
  void publish_will(Session& session);
  /// Detach the connection. Graceful (DISCONNECT / broker-initiated) drops
  /// skip the will; a clean session is erased entirely.
  void drop_connection(const std::string& client_id, bool graceful);
  void retransmit_packets();
  void expire_sessions();
  void store_retained(const PacketPtr& packet);
  void replay_retained(Session& session, const std::string& filter,
                       int granted_qos);
  void erase_session(const std::string& client_id);

  [[nodiscard]] SimTime packet_service_demand(std::int64_t bytes,
                                              int fanout) const;

  cluster::Host& host_;
  net::Lan& lan_;
  net::StreamTransport& streams_;
  MqttBrokerConfig config_;

  /// Sessions keyed by client id (ordered, so sweeps and fan-out walk the
  /// table deterministically). Map nodes are stable across other inserts.
  std::map<std::string, Session> sessions_;
  /// Topic trie over every session's filters: one walk per publish instead
  /// of a filter scan per session. Kept in lockstep with the
  /// session subscription lists (subscribe / erase_session / crash).
  SubscriptionIndex sub_index_;
  /// Match-result scratch, reused across publishes.
  std::vector<SubscriptionIndex::Match> match_scratch_;
  /// Latest retained message per topic.
  std::map<std::string, PacketPtr> retained_;

  sim::PeriodicTimer retransmit_timer_;
  sim::PeriodicTimer keep_alive_timer_;
  bool started_ = false;
  bool crashed_ = false;

  MqttBrokerStats stats_;
};

}  // namespace gridmon::mqtt
